"""Circuit container and element base class for the MNA engine.

A :class:`Circuit` is a flat netlist: a set of named nodes and a list of
:class:`Element` instances.  Ground is the node named ``"0"`` (the alias
``"gnd"`` is accepted and normalized).  Hierarchy is expressed with plain
Python builder functions that prefix element and node names; the engine
itself stays flat, which keeps the matrix assembly simple and debuggable.

Sign conventions (shared with :mod:`fecam.spice.analysis`):

* The residual ``F[k]`` of node ``k`` is the sum of currents *leaving* the
  node through all connected elements.  KCL demands ``F[k] == 0``.
* A voltage source's branch current flows from its ``pos`` terminal through
  the source to its ``neg`` terminal (SPICE convention), so a positive
  branch current *leaves* ``pos``.
* Energy delivered by a source is ``∫ v(t)·i(t) dt`` with that current sign,
  i.e. positive when the source injects energy into the circuit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import NetlistError

GROUND_NAMES = ("0", "gnd", "GND", "vss!", "ground")


def canonical_node(name: str) -> str:
    """Normalize a node name; all ground aliases collapse to ``"0"``."""
    if not isinstance(name, str) or not name:
        raise NetlistError(f"invalid node name: {name!r}")
    if name in GROUND_NAMES:
        return "0"
    return name


class Element:
    """Base class for all circuit elements.

    Subclasses declare their terminal node names in ``terminals`` and
    implement :meth:`stamp`.  Elements with internal state (capacitor charge,
    ferroelectric polarization) additionally override :meth:`init_state` and
    :meth:`commit`.
    """

    #: Number of extra MNA branch-current unknowns this element needs
    #: (1 for voltage sources, 0 for everything else).
    num_branches = 0

    def __init__(self, name: str, terminals: Sequence[str]):
        if not name:
            raise NetlistError("element name must be non-empty")
        self.name = name
        self.terminals: Tuple[str, ...] = tuple(canonical_node(t) for t in terminals)
        # Global indices are resolved by the analysis; -1 marks ground.
        self._node_index: Tuple[int, ...] = ()
        self._branch_index: Tuple[int, ...] = ()

    # -- lifecycle hooks -----------------------------------------------------

    def bind(self, node_index: Sequence[int], branch_index: Sequence[int]) -> None:
        """Record the global unknown indices assigned by the analysis."""
        self._node_index = tuple(node_index)
        self._branch_index = tuple(branch_index)

    def init_state(self, v: "TerminalVoltages") -> None:
        """Initialize internal state from a converged DC solution."""

    def stamp(self, ctx, v: "TerminalVoltages") -> None:
        """Add this element's contribution to the Jacobian and residual.

        ``ctx`` is a :class:`fecam.spice.analysis.StampContext`; ``v`` gives
        the current Newton iterate's terminal voltages (and branch currents).
        """
        raise NotImplementedError

    def commit(self, v: "TerminalVoltages") -> None:
        """Accept internal state at the end of a converged timestep."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} {self.terminals}>"


class TerminalVoltages:
    """View of an element's terminal voltages within the global solution.

    Provides ``v[i]`` for terminal ``i`` (0.0 for ground) and
    ``branch(i)`` for the element's i-th branch current.
    """

    __slots__ = ("_x", "_nodes", "_branches")

    def __init__(self, x, node_index: Sequence[int], branch_index: Sequence[int]):
        self._x = x
        self._nodes = node_index
        self._branches = branch_index

    def __getitem__(self, i: int) -> float:
        k = self._nodes[i]
        return 0.0 if k < 0 else float(self._x[k])

    def branch(self, i: int = 0) -> float:
        return float(self._x[self._branches[i]])


class Circuit:
    """A flat netlist of named nodes and elements.

    Nodes are created implicitly the first time an element references them;
    :meth:`node` may also be called explicitly for documentation value.
    Element names must be unique — builder functions should prefix them.
    """

    def __init__(self, title: str = ""):
        self.title = title
        self._elements: List[Element] = []
        self._element_names: Dict[str, Element] = {}
        self._nodes: Dict[str, int] = {}

    # -- construction ----------------------------------------------------------

    def node(self, name: str) -> str:
        """Declare (or re-reference) a node and return its canonical name."""
        cname = canonical_node(name)
        if cname != "0" and cname not in self._nodes:
            self._nodes[cname] = len(self._nodes)
        return cname

    def add(self, element: Element) -> Element:
        """Add an element, registering its terminals as nodes."""
        if element.name in self._element_names:
            raise NetlistError(f"duplicate element name: {element.name}")
        for terminal in element.terminals:
            self.node(terminal)
        self._elements.append(element)
        self._element_names[element.name] = element
        return element

    def extend(self, elements: Iterable[Element]) -> None:
        for element in elements:
            self.add(element)

    # -- queries ---------------------------------------------------------------

    @property
    def elements(self) -> Tuple[Element, ...]:
        return tuple(self._elements)

    @property
    def node_names(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    @property
    def num_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self._nodes)

    def element(self, name: str) -> Element:
        try:
            return self._element_names[name]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    def has_element(self, name: str) -> bool:
        return name in self._element_names

    def node_index(self, name: str) -> int:
        """Global unknown index of a node (-1 for ground)."""
        cname = canonical_node(name)
        if cname == "0":
            return -1
        try:
            return self._nodes[cname]
        except KeyError:
            raise NetlistError(f"no node named {name!r}") from None

    def elements_of_type(self, cls) -> List[Element]:
        return [e for e in self._elements if isinstance(e, cls)]

    def __contains__(self, node_name: str) -> bool:
        return canonical_node(node_name) == "0" or canonical_node(node_name) in self._nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Circuit {self.title!r}: {self.num_nodes} nodes, "
                f"{len(self._elements)} elements>")

    def summary(self) -> str:
        """Human-readable netlist listing, useful in error reports."""
        lines = [f"* {self.title}" if self.title else "* (untitled circuit)"]
        for e in self._elements:
            lines.append(f"{type(e).__name__:<16} {e.name:<20} {' '.join(e.terminals)}")
        return "\n".join(lines)
