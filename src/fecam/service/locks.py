"""Reader-writer lock for the serving tier.

Associative search is read-dominated (routing tables mutate rarely;
rule sets are near-static), so the service lets any number of search
dispatches proceed concurrently while a write takes the whole store
exclusively.  The lock is *writer-preferring*: once a writer is
waiting, new readers queue behind it, so a steady search load cannot
starve table updates — the failure mode that matters for a serving
layer whose whole point is heavy read traffic.
"""

from __future__ import annotations

import threading

from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["RWLock"]


class RWLock:
    """A writer-preferring reader-writer lock.

    Any number of readers may hold the lock together; a writer holds it
    alone.  Readers arriving while a writer is active *or waiting*
    block, which bounds writer latency at the tail of the in-flight
    reader set.

    >>> lock = RWLock()
    >>> with lock.read_locked():
    ...     pass
    >>> with lock.write_locked():
    ...     pass
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        # Sanitizer seam (fecam.analysis.sanitize): when FECAM_SANITIZE
        # is on, a LockMonitor is attached here and maintains per-thread
        # locksets.  Off by default; the hot path pays one attribute
        # load and a None check per acquire/release.
        self._monitor: Optional["_MonitorHooks"] = None

    # -- reader side -------------------------------------------------------------

    def acquire_read(self) -> None:
        monitor = self._monitor
        if monitor is not None:
            # Before blocking: a thread that already holds this lock in
            # write mode would deadlock against itself here.
            monitor.before_acquire_read()
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        if monitor is not None:
            monitor.acquired_read()

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers < 0:
                self._readers = 0
                raise RuntimeError("release_read() without acquire_read()")
            if self._readers == 0:
                self._cond.notify_all()
        monitor = self._monitor
        if monitor is not None:
            monitor.released_read()

    @contextmanager
    def read_locked(self) -> Iterator["RWLock"]:
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    # -- writer side -------------------------------------------------------------

    def acquire_write(self) -> None:
        monitor = self._monitor
        if monitor is not None:
            # Before blocking: read->write upgrade (or re-entrant
            # write) self-deadlocks; the monitor raises instead.
            monitor.before_acquire_write()
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        if monitor is not None:
            monitor.acquired_write()

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError(
                    "release_write() without acquire_write()")
            self._writer_active = False
            self._cond.notify_all()
        monitor = self._monitor
        if monitor is not None:
            monitor.released_write()

    @contextmanager
    def write_locked(self) -> Iterator["RWLock"]:
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<RWLock readers={self._readers} "
                f"writer={self._writer_active} "
                f"writers_waiting={self._writers_waiting}>")


class _MonitorHooks:
    """Hook interface a sanitizer monitor implements (duck-typed; this
    class only documents the seam for type checkers)."""

    def before_acquire_read(self) -> None: ...
    def acquired_read(self) -> None: ...
    def released_read(self) -> None: ...
    def before_acquire_write(self) -> None: ...
    def acquired_write(self) -> None: ...
    def released_write(self) -> None: ...
