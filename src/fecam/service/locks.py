"""Reader-writer lock for the serving tier.

Associative search is read-dominated (routing tables mutate rarely;
rule sets are near-static), so the service lets any number of search
dispatches proceed concurrently while a write takes the whole store
exclusively.  The lock is *writer-preferring*: once a writer is
waiting, new readers queue behind it, so a steady search load cannot
starve table updates — the failure mode that matters for a serving
layer whose whole point is heavy read traffic.
"""

from __future__ import annotations

import threading

from contextlib import contextmanager

__all__ = ["RWLock"]


class RWLock:
    """A writer-preferring reader-writer lock.

    Any number of readers may hold the lock together; a writer holds it
    alone.  Readers arriving while a writer is active *or waiting*
    block, which bounds writer latency at the tail of the in-flight
    reader set.

    >>> lock = RWLock()
    >>> with lock.read_locked():
    ...     pass
    >>> with lock.write_locked():
    ...     pass
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- reader side -------------------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers < 0:
                self._readers = 0
                raise RuntimeError("release_read() without acquire_read()")
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    # -- writer side -------------------------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError(
                    "release_write() without acquire_write()")
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<RWLock readers={self._readers} "
                f"writer={self._writer_active} "
                f"writers_waiting={self._writers_waiting}>")
