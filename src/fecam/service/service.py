"""`SearchService` — concurrent micro-batching serving over a store.

Every entry point below the service is a synchronous single-caller API;
the fused arena kernel only pays off when many queries arrive in one
``search_batch`` call.  The service closes that gap for concurrent
callers: requests enqueue onto a bounded queue, a dispatcher thread
drains it every ``max_wait`` seconds (or as soon as ``max_batch``
requests are waiting) and issues **one** fused batch search for the
whole drain — many small independent requests ride one kernel pass.

Consistency is snapshot isolation by construction:

* writers (:meth:`SearchService.write` and the convenience wrappers)
  take a writer-preferring :class:`~fecam.service.RWLock` exclusively;
* the dispatcher searches under the read side, so a batch can never
  observe a half-applied write, and every result is tagged with the
  store's write-generation at which it was computed
  (:attr:`ServedResult.generation`) — a serial replay of the write
  journal up to that generation reproduces the result bit-identically
  (the stress suite proves exactly this).

Backpressure is explicit: a full queue raises
:class:`~fecam.errors.ServiceOverloaded` at submission, a closed
service raises :class:`~fecam.errors.ServiceClosed`.  Both a sync front
door (``submit().result()`` / :meth:`search`) and an ``asyncio`` one
(:meth:`asearch`, bridging the dispatcher's
:class:`concurrent.futures.Future` into the caller's event loop) are
provided.

>>> from fecam.store import CamStore, StoreConfig
>>> store = CamStore(StoreConfig(width=8, rows=4, fidelity="analytical"))
>>> _ = store.insert("1010XXXX", key="rule-a")
>>> with SearchService(store) as service:
...     served = service.search("10101111")
>>> served.result.best.key
'rule-a'
"""

from __future__ import annotations

import asyncio
import threading
import time

from collections import Counter, OrderedDict, deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Hashable, List, Optional,
                    Sequence, Tuple, Union)

from ..analysis.sanitize import maybe_sanitize_service
from ..errors import OperationError, ServiceClosed, ServiceOverloaded
from ..fabric.batch import normalize_queries
from ..obs.trace import Span, Trace, activated
from ..store import CamStore
from ..store.result import Match, Query, QueryResult
from .locks import RWLock
from .stats import LatencyReservoir, ServiceStats

if TYPE_CHECKING:  # avoid importing the full obs package eagerly
    from ..obs import Observability

__all__ = ["SearchService", "ServedResult"]

#: str.translate table deleting '0'/'1' — an already-canonical query
#: translates to the empty string, so the submit fast path is one
#: length check plus one C-level scan instead of a NumPy round trip.
_NON_BINARY = str.maketrans("", "", "01")


@dataclass(frozen=True)
class ServedResult:
    """One completed request: the result plus its consistency tag.

    ``generation`` is the store write-generation the search was computed
    at — every write through the service advances it by exactly one, so
    replaying the write journal up to ``generation`` reproduces the
    store state this result observed.  ``latency`` is the wall time from
    submission to completion (what the caller actually waited, including
    queueing and coalescing delay).
    """

    result: QueryResult
    generation: int
    latency: float

    @property
    def best(self) -> Optional[Match]:
        return self.result.best

    @property
    def match_keys(self) -> List[Hashable]:
        return self.result.match_keys


class _Burst:
    """One blocking ``search_many`` call: N requests, ONE shared future.

    The future-per-request protocol costs a few microseconds per
    request (Future construction, per-future condition locks on
    set_result and result()); a burst collapses all of it to a single
    future resolving to the ordered result list.  ``results``/
    ``remaining``/``error`` are only mutated under the service mutex —
    the dispatcher's completion sweep and close()'s rejection path can
    touch members of the same burst concurrently.
    """

    __slots__ = ("future", "results", "remaining", "error")

    def __init__(self, future: "Future", n: int):
        self.future = future
        self.results: List[Optional[ServedResult]] = [None] * n
        self.remaining = n
        self.error: Optional[BaseException] = None


class _Pending:
    """One enqueued request (slotted: the queue churns at request rate)."""

    __slots__ = ("bits", "mask", "future", "enqueued_at", "trace",
                 "burst", "slot")

    def __init__(self, bits: str, mask: Optional[str], future: "Future",
                 enqueued_at: float, trace: Optional[Trace] = None,
                 burst: "Optional[_Burst]" = None, slot: int = 0):
        self.bits = bits
        self.mask = mask
        self.future = future
        self.enqueued_at = enqueued_at
        self.trace = trace
        self.burst = burst
        self.slot = slot


class SearchService:
    """Thread-safe micro-batching search service over a :class:`CamStore`.

    Parameters
    ----------
    store:
        The store to serve.  The service assumes ownership of its
        consistency: all mutation while serving must go through
        :meth:`write` (or the ``insert``/``delete``/``update``
        wrappers), which take the writer lock.
    max_batch:
        Most requests one dispatch drains (the fused-kernel batch size).
    max_wait:
        Longest a request waits for co-riders before dispatching anyway
        (seconds).  The default ``0`` is *natural batching*: the
        dispatcher drains whatever is queued immediately, and batches
        form from the requests that pile up while the previous kernel
        call runs — no artificial latency, coalescing proportional to
        load.  A positive window trades per-request latency for larger
        fused batches (useful when callers pipeline bursts).
    max_queue:
        Bound of the request queue; submissions past it raise
        :class:`ServiceOverloaded`.
    start:
        Start the dispatcher thread immediately (default).  Pass
        ``False`` to enqueue deterministically first — tests do this to
        pin batch composition — then call :meth:`start`.
    latency_window:
        Size of the latency reservoir behind the p50/p99 stats.
    use_cache:
        Serve dispatches through the store's query cache (default).
        Pass ``False`` for unique-query workloads: the per-query cache
        bookkeeping (key lookups, puts, snapshot copies) then costs
        more than it ever saves, and skipping it measurably fattens
        peak throughput.
    obs:
        An optional :class:`~fecam.obs.Observability` bundle.  When set,
        the dispatcher feeds its request-latency histogram (one lock per
        drained batch), honors its sampled tracer (per-stage spans:
        ``queue``, ``coalesce``, ``lock_wait``, ``kernel``, ``freeze``),
        and checks its slow-query log threshold per completed request.
        When ``None`` (default), the request path pays a single ``None``
        check — observability off costs nothing measurable.
    """

    def __init__(self, store: CamStore, *, max_batch: int = 64,
                 max_wait: float = 0.0, max_queue: int = 1024,
                 start: bool = True, latency_window: int = 4096,
                 use_cache: bool = True,
                 obs: "Optional[Observability]" = None):
        if max_batch < 1:
            raise OperationError("max_batch must be at least 1")
        if max_queue < 1:
            raise OperationError("max_queue must be at least 1")
        if max_wait < 0:
            raise OperationError("max_wait must be non-negative")
        self.store = store
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.max_queue = max_queue
        self.use_cache = use_cache
        self._rw = RWLock()
        # One mutex guards the queue and every counter; the condition
        # wakes the dispatcher on submissions and close().
        self._mutex = threading.Lock()
        self._wakeup = threading.Condition(self._mutex)
        self._queue: "deque[_Pending]" = deque()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._submitted = 0
        self._served = 0
        self._failed = 0
        self._overloads = 0
        self._max_queue_depth = 0
        self._batches = 0
        self._batch_sizes: "Counter[int]" = Counter()
        self._coalesced = 0
        self._direct = 0
        self._writes = 0
        self._latencies = LatencyReservoir(latency_window)
        self._obs = obs
        # Cached so the submit path's tracing gate is one slot load +
        # None check — identical work whether obs is absent or
        # metrics-only (the <1% disabled-overhead budget is ~a couple
        # hundred ns per request on slow hosts).
        self._tracer = obs.tracer if obs is not None else None
        self._started_wall = time.time()
        self._started_mono = time.perf_counter()
        # Dispatcher-thread-only drain timestamps (stage-span inputs):
        # when the wait loop saw work, and when the drain finished
        # popping.  Single dispatcher thread, so plain attributes.
        self._drain_wake = self._started_mono
        self._drain_end = self._started_mono
        # Opt-in concurrency sanitizer (FECAM_SANITIZE=1): instruments
        # the RWLock with per-thread locksets and wraps the backend's
        # planes so unlocked arena access and missed generation bumps
        # surface as structured violations.  No-op when disabled.
        maybe_sanitize_service(self)
        if start:
            self.start()

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "SearchService":
        """Start the dispatcher thread (idempotent)."""
        with self._mutex:
            if self._closed:
                raise ServiceClosed("service is closed")
            if self._thread is not None:
                return self
            self._thread = threading.Thread(
                target=self._dispatch_loop,
                name="fecam-service-dispatcher", daemon=True)
            # Start inside the mutex: close() may read _thread the
            # moment we release it, and joining a never-started thread
            # raises.
            self._thread.start()
        return self

    @property
    def closed(self) -> bool:
        with self._mutex:
            return self._closed

    def close(self, *, drain: bool = True,
              timeout: Optional[float] = None) -> bool:
        """Shut down: stop accepting, then drain or fail the queue.

        With ``drain=True`` (default) every already-accepted request is
        still served before the dispatcher exits; with ``drain=False``
        queued requests fail with :class:`ServiceClosed`.  Idempotent.

        Returns ``True`` when the dispatcher has fully stopped (the
        drain contract held).  With a ``timeout``, a still-draining
        dispatcher makes this return ``False`` — requests may complete
        after the call returns, and callers who need the drain
        guarantee must check the result rather than assume it.
        """
        with self._mutex:
            already = self._closed
            self._closed = True
            rejected: List[_Pending] = []
            if not drain:
                rejected = list(self._queue)
                self._queue.clear()
            self._wakeup.notify_all()
            thread = self._thread
        for pending in rejected:
            error = ServiceClosed("service closed before "
                                  "this request dispatched")
            if pending.trace is not None:
                pending.trace.root.attrs["error"] = repr(error)
                self._obs.tracer.finish(pending.trace)
            self._complete_error(pending, error)
        if thread is not None:
            thread.join(timeout)
            return not thread.is_alive()
        if drain and not already:
            # Never started: serve the backlog inline so close() keeps
            # its contract (accepted requests complete) even without a
            # dispatcher thread.
            self._dispatch_loop()
        return True

    def __enter__(self) -> "SearchService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- front doors -------------------------------------------------------------

    def _prepare(self, query: Union[Query, str],
                 mask: Optional[str]) -> Tuple[str, Optional[str]]:
        """Validate one request; returns ``(bits, effective_mask)``.

        Plain canonical '0'/'1' strings of the right width — the
        overwhelming serving case — skip both the ``Query`` wrapper and
        the NumPy normalization round trip.  Everything non-canonical
        (aliases, int sequences, bad widths) takes the full
        normalization path and raises the same errors it always did.
        """
        if type(query) is str:
            bits: Any = query
            own_mask: Optional[str] = None
        else:
            coerced = Query.coerce(query)
            bits = coerced.bits
            own_mask = coerced.mask
        if not (isinstance(bits, str) and len(bits) == self.store.width
                and not bits.translate(_NON_BINARY)):
            bits = normalize_queries([bits], self.store.width)[0]
        if own_mask is not None and mask is not None \
                and own_mask != mask:
            raise OperationError(
                "the query's own mask conflicts with the mask argument")
        return bits, (own_mask if own_mask is not None else mask)

    def submit(self, query: Union[Query, str],
               mask: Optional[str] = None) -> "Future[ServedResult]":
        """Enqueue one request; returns a future of :class:`ServedResult`.

        Validation happens here, at the front door, so a malformed query
        fails its own future's caller immediately instead of poisoning
        the batch it would have ridden.
        """
        bits, effective_mask = self._prepare(query, mask)
        future: "Future[ServedResult]" = Future()
        enqueued_at = time.perf_counter()
        trace = None
        tracer = self._tracer
        if tracer is not None and tracer.sampler():
            # The root span starts at enqueue, on the same clock as the
            # latency accounting, so stage durations sum to the e2e
            # latency the caller observes.  Gated on the tracer, not
            # just on obs: metrics-only observability must not pay the
            # sampling call per request — and the sampler is invoked
            # inline so an unsampled request pays one call, not two,
            # and builds no attrs dict.
            trace = tracer.begin(enqueued_at)
            trace.root.attrs["bits"] = bits
            trace.root.attrs["mask"] = effective_mask
        pending = _Pending(bits, effective_mask, future, enqueued_at,
                           trace)
        try:
            with self._mutex:
                if self._closed:
                    raise ServiceClosed("service is closed")
                if len(self._queue) >= self.max_queue:
                    self._overloads += 1
                    raise ServiceOverloaded(
                        f"request queue is full "
                        f"({self.max_queue} pending)")
                self._queue.append(pending)
                self._submitted += 1
                depth = len(self._queue)
                if depth > self._max_queue_depth:
                    self._max_queue_depth = depth
                self._wakeup.notify_all()
        except (ServiceClosed, ServiceOverloaded) as exc:
            if trace is not None:
                # Rejected before dispatch: still emit the trace so
                # sampled == finished holds for the tracer's counters.
                trace.root.attrs["error"] = repr(exc)
                self._obs.tracer.finish(trace)
            raise
        return future

    def submit_many(self, queries: Sequence[Union[Query, str]],
                    mask: Optional[str] = None
                    ) -> "List[Future[ServedResult]]":
        """Enqueue a burst; per-request futures, same order.

        The bulk front door: the whole burst is validated up front,
        then enqueued under a single mutex hold with one dispatcher
        wakeup, so a burst costs a fraction of ``len(queries)``
        individual :meth:`submit` calls.  Validation and backpressure
        are all-or-nothing — a malformed query, or a burst that does
        not fit under ``max_queue``, rejects the burst before any of
        it enqueues.
        """
        enqueued_at, pendings = self._build_burst(queries, mask,
                                                  shared_future=None)
        self._enqueue(pendings)
        return [pending.future for pending in pendings]

    def _build_burst(self, queries: Sequence[Union[Query, str]],
                     mask: Optional[str], *,
                     shared_future: "Optional[Future]"
                     ) -> Tuple[float, List[_Pending]]:
        """Validate a burst and wrap it in pendings, not yet enqueued.

        With ``shared_future`` the whole burst rides one :class:`_Burst`
        handle; without, every pending gets its own future.
        """
        prepared = [self._prepare(query, mask) for query in queries]
        enqueued_at = time.perf_counter()
        tracer = self._tracer
        burst = (None if shared_future is None
                 else _Burst(shared_future, len(prepared)))
        pendings: List[_Pending] = []
        for slot, (bits, effective_mask) in enumerate(prepared):
            trace = None
            if tracer is not None and tracer.sampler():
                trace = tracer.begin(enqueued_at)
                trace.root.attrs["bits"] = bits
                trace.root.attrs["mask"] = effective_mask
            future = shared_future if shared_future is not None else Future()
            pendings.append(_Pending(bits, effective_mask, future,
                                     enqueued_at, trace, burst, slot))
        return enqueued_at, pendings

    def _enqueue(self, pendings: List[_Pending]) -> None:
        """Admit a validated burst under one mutex hold, one wakeup.

        All-or-nothing backpressure: a burst that does not fit under
        ``max_queue`` raises without enqueueing any of it.
        """
        try:
            with self._mutex:
                if self._closed:
                    raise ServiceClosed("service is closed")
                if len(self._queue) + len(pendings) > self.max_queue:
                    self._overloads += 1
                    raise ServiceOverloaded(
                        f"burst of {len(pendings)} does not fit in the "
                        f"request queue ({self.max_queue} pending max)")
                self._queue.extend(pendings)
                self._submitted += len(pendings)
                depth = len(self._queue)
                if depth > self._max_queue_depth:
                    self._max_queue_depth = depth
                self._wakeup.notify_all()
        except (ServiceClosed, ServiceOverloaded) as exc:
            for pending in pendings:
                if pending.trace is not None:
                    pending.trace.root.attrs["error"] = repr(exc)
                    self._obs.tracer.finish(pending.trace)
            raise

    def search(self, query: Union[Query, str],
               mask: Optional[str] = None, *,
               timeout: Optional[float] = None) -> ServedResult:
        """Blocking front door: ``submit().result()``."""
        return self.submit(query, mask).result(timeout)

    def search_many(self, queries: Sequence[Union[Query, str]],
                    mask: Optional[str] = None, *,
                    timeout: Optional[float] = None) -> List[ServedResult]:
        """Blocking burst: submit all, then wait for all, in order.

        The burst shares ONE internal future (see :class:`_Burst`):
        the caller blocks once and the dispatcher resolves once, so a
        large burst skips the per-request Future construction,
        ``set_result`` and ``result()`` lock traffic that
        :meth:`submit_many` pays.  Requests still coalesce into fused
        batches individually; the future resolves when the last member
        is served, with the burst's first dispatch error if any member
        failed.
        """
        if not queries:
            return []
        shared: "Future[List[ServedResult]]" = Future()
        _enqueued_at, pendings = self._build_burst(queries, mask,
                                                   shared_future=shared)
        self._enqueue(pendings)
        return shared.result(timeout)

    async def asearch(self, query: Union[Query, str],
                      mask: Optional[str] = None) -> ServedResult:
        """``asyncio`` front door.

        The dispatcher completes :class:`concurrent.futures.Future`
        objects from its own thread; ``asyncio.wrap_future`` bridges one
        into the running loop, so any number of coroutines await
        concurrently and coalesce into the same fused batches as
        threads do.
        """
        return await asyncio.wrap_future(self.submit(query, mask))

    async def asearch_many(self, queries: Sequence[Union[Query, str]],
                           mask: Optional[str] = None
                           ) -> List[ServedResult]:
        futures = [asyncio.wrap_future(self.submit(query, mask))
                   for query in queries]
        return list(await asyncio.gather(*futures))

    # -- writes ------------------------------------------------------------------

    def write(self, txn: Callable[[CamStore], Any]) -> Any:
        """Run one mutating transaction with writer exclusivity.

        ``txn`` receives the store and runs with every search dispatch
        excluded, so multi-operation transactions are atomic with
        respect to served results — no batch ever observes a
        half-applied ``txn``.  Returns whatever ``txn`` returns.
        """
        if self.closed:
            raise ServiceClosed("service is closed")
        with self._rw.write_locked():
            result = txn(self.store)
        with self._mutex:
            self._writes += 1
        return result

    def read(self, fn: Callable[[CamStore], Any]) -> Any:
        """Run one read-only function under the read lock.

        The consistency door for non-search reads (snapshots, stats
        sweeps, durable checkpoints): ``fn`` observes a store no writer
        is mid-mutating, and may ride alongside search dispatches —
        readers share.  ``fn`` must not mutate the store.
        """
        if self.closed:
            raise ServiceClosed("service is closed")
        with self._rw.read_locked():
            return fn(self.store)

    def insert(self, word: str, key: Optional[Hashable] = None, *,
               priority: Optional[float] = None,
               payload: Any = None) -> Match:
        return self.write(lambda store: store.insert(
            word, key=key, priority=priority, payload=payload))

    def insert_many(self, words: Sequence[str],
                    keys: Optional[Sequence[Hashable]] = None, *,
                    priorities: Optional[Sequence[float]] = None,
                    payloads: Optional[Sequence[Any]] = None
                    ) -> List[Match]:
        return self.write(lambda store: store.insert_many(
            words, keys=keys, priorities=priorities, payloads=payloads))

    def delete(self, key: Hashable) -> Match:
        return self.write(lambda store: store.delete(key))

    def update(self, key: Hashable, word: str, *,
               payload: Any = None) -> Match:
        return self.write(lambda store: store.update(
            key, word, payload=payload))

    # -- dispatcher --------------------------------------------------------------

    def _next_batch(self) -> Optional[List[_Pending]]:
        """Block until work or shutdown; drain up to ``max_batch``.

        The coalescing window: after the first request arrives, keep
        waiting (up to ``max_wait``) for co-riders unless the batch is
        already full or the service is closing — a closing service
        drains at full speed.
        """
        with self._mutex:
            while not self._queue and not self._closed:
                self._wakeup.wait()
            if not self._queue:
                return None  # closed and drained: dispatcher exits
            if self._obs is not None:
                self._drain_wake = time.perf_counter()
            if self.max_wait > 0 and not self._closed \
                    and len(self._queue) < self.max_batch:
                deadline = time.monotonic() + self.max_wait
                while len(self._queue) < self.max_batch \
                        and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._wakeup.wait(remaining)
            n = min(self.max_batch, len(self._queue))
            batch = [self._queue.popleft() for _ in range(n)]
            if self._obs is not None:
                self._drain_end = time.perf_counter()
            return batch

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._serve(batch)

    def _serve(self, batch: List[_Pending]) -> None:
        """One dispatch: search the whole drain under the read lock.

        Requests sharing a mask fuse into one ``search_batch`` call; a
        drain mixing masks issues one call per mask group (the kernel
        applies a single mask per batch), all inside one read-lock hold
        so every result of the dispatch reports the same generation.
        """
        obs = self._obs
        traced = ([pending for pending in batch
                   if pending.trace is not None]
                  if obs is not None and obs.tracer is not None else [])
        groups: "OrderedDict[Optional[str], List[_Pending]]" = OrderedDict()
        for pending in batch:
            groups.setdefault(pending.mask, []).append(pending)
        outcomes: List[Tuple[List[_Pending], Optional[BaseException],
                             Optional[List[QueryResult]]]] = []
        with self._rw.read_locked():
            if traced:
                # Pre-kernel stages per sampled request: queue wait
                # (enqueue until the dispatcher saw work), coalesce wait
                # (until the drain popped), and the read-lock wait.
                # Requests that arrived mid-window clamp to their own
                # enqueue time.
                t_locked = time.perf_counter()
                for pending in traced:
                    wake = max(pending.enqueued_at, self._drain_wake)
                    popped = max(wake, self._drain_end)
                    pending.trace.record("queue", pending.enqueued_at,
                                         wake)
                    pending.trace.record("coalesce", wake, popped)
                    pending.trace.record("lock_wait", popped, t_locked)
            generation = self.store.generation
            for mask, group in groups.items():
                # Each sampled request gets a "kernel" span covering its
                # group's fused store call; the store and arena kernel
                # nest their own stage spans under it via activated().
                kernel_spans: List[Tuple[Trace, Span]] = []
                if traced:
                    for pending in group:
                        if pending.trace is not None:
                            span = pending.trace.open(
                                "kernel", queries=len(group))
                            kernel_spans.append((pending.trace, span))
                try:
                    if kernel_spans:
                        with activated([(trace, span.span_id)
                                        for trace, span in kernel_spans]):
                            results = self.store.search_batch(
                                [pending.bits for pending in group],
                                mask=mask, use_cache=self.use_cache)
                    else:
                        results = self.store.search_batch(
                            [pending.bits for pending in group], mask=mask,
                            use_cache=self.use_cache)
                except Exception as exc:  # fail the group, keep serving
                    if kernel_spans:
                        now = time.perf_counter()
                        for _trace, span in kernel_spans:
                            span.close(now)
                    outcomes.append((group, exc, None))
                else:
                    kernel_done = time.perf_counter()
                    for _trace, span in kernel_spans:
                        span.close(kernel_done)
                    # Freeze the results while the read lock still
                    # excludes writers: backends reuse live Match
                    # objects (update() mutates word/payload in place),
                    # so served results must hold copies or a later
                    # write would retroactively rewrite them — the
                    # torn read the stress suite's serial replay
                    # catches.  freeze() snapshots field tuples and
                    # materializes Match objects lazily.
                    frozen = [r.freeze() for r in results]
                    if kernel_spans:
                        freeze_done = time.perf_counter()
                        for trace, _span in kernel_spans:
                            trace.record("freeze", kernel_done,
                                         freeze_done)
                    outcomes.append((group, None, frozen))
        completed_at = time.perf_counter()
        size = len(batch)
        with self._mutex:
            self._batches += 1
            self._batch_sizes[size] += 1
            if size > 1:
                self._coalesced += size
            else:
                self._direct += 1
        slow_log = obs.slow_log if obs is not None else None
        # Hoist the threshold so the per-request slow check is one
        # float compare; record() (kwargs build, JSON dump) only runs
        # for actual offenders.
        slow_threshold = (slow_log.threshold_s if slow_log is not None
                          else None)
        # Per-request obs work (trace finishing, the slow-query check)
        # only runs when something per-request is actually configured:
        # metrics-only serving takes the same completion path as
        # obs-off and folds its latencies in one batch-level sweep.
        per_request_obs = bool(traced) or slow_threshold is not None
        deliveries: List[Tuple[_Pending, ServedResult]] = []
        for group, error, results in outcomes:
            if error is not None:
                for pending in group:
                    if pending.trace is not None:
                        pending.trace.root.attrs["error"] = repr(error)
                        obs.tracer.finish(pending.trace, completed_at)
                    self._complete_error(pending, error)
                continue
            if per_request_obs:
                for pending, result in zip(group, results):
                    latency = completed_at - pending.enqueued_at
                    if pending.trace is not None:
                        pending.trace.root.attrs.update(
                            generation=generation, batch_size=size,
                            matches=len(result.matches))
                        obs.tracer.finish(pending.trace, completed_at)
                    if (slow_threshold is not None
                            and latency >= slow_threshold):
                        slow_log.record(
                            bits=pending.bits, mask=pending.mask,
                            latency=latency, generation=generation,
                            batch_size=size, matches=len(result.matches))
                    deliveries.append((pending, ServedResult(
                        result=result, generation=generation,
                        latency=latency)))
            else:
                for pending, result in zip(group, results):
                    deliveries.append((pending, ServedResult(
                        result=result, generation=generation,
                        latency=completed_at - pending.enqueued_at)))
        self._complete_batch(deliveries)
        if obs is not None:
            # One histogram lock acquisition for the whole drain; the
            # listcomp re-derives latencies C-side rather than taxing
            # the completion loop with per-request appends.
            latencies = [completed_at - pending.enqueued_at
                         for group, error, _results in outcomes
                         if error is None for pending in group]
            if latencies:
                obs.record_latencies(latencies)

    def _complete_batch(
            self, deliveries: "List[Tuple[_Pending, ServedResult]]"
    ) -> None:
        """Deliver one drain's results with a single counter-mutex hold.

        Counting happens before any future resolves: a caller reading
        stats right after its result arrives must see itself served.
        Burst members fill their slot and only the last one resolves
        the shared future; burst bookkeeping stays under the mutex
        because close()'s rejection path may race the dispatcher on
        siblings of the same burst.
        """
        singles: "List[Tuple[Future[ServedResult], ServedResult]]" = []
        resolved: List[_Burst] = []
        with self._mutex:
            served = 0
            record = self._latencies.record
            for pending, result in deliveries:
                burst = pending.burst
                if burst is None:
                    # Cancelled-while-queued futures drop out here;
                    # nothing to deliver, nothing to count.
                    if not pending.future.set_running_or_notify_cancel():
                        continue
                    singles.append((pending.future, result))
                else:
                    burst.results[pending.slot] = result
                    burst.remaining -= 1
                    if burst.remaining == 0:
                        resolved.append(burst)
                served += 1
                record(result.latency)
            self._served += served
        for future, result in singles:
            future.set_result(result)
        for burst in resolved:
            try:
                if burst.error is not None:
                    burst.future.set_exception(burst.error)
                else:
                    burst.future.set_result(burst.results)
            except InvalidStateError:
                pass  # the burst caller cancelled; results are dropped

    def _complete_error(self, pending: _Pending,
                        error: BaseException) -> None:
        burst = pending.burst
        if burst is None:
            if not pending.future.set_running_or_notify_cancel():
                return
            with self._mutex:
                self._failed += 1
            pending.future.set_exception(error)
            return
        with self._mutex:
            self._failed += 1
            if burst.error is None:
                burst.error = error
            burst.remaining -= 1
            resolve = burst.remaining == 0
        if resolve:
            try:
                burst.future.set_exception(burst.error)
            except InvalidStateError:
                pass  # the burst caller cancelled; the error is dropped

    # -- telemetry ---------------------------------------------------------------

    @property
    def obs(self) -> "Optional[Observability]":
        """The observability bundle this service feeds, if any."""
        return self._obs

    @property
    def stats(self) -> ServiceStats:
        # The store generation is shared arena state: read it under the
        # RWLock like every other store access (FCA002), and *outside*
        # the mutex — write() holds the write lock with the mutex
        # released, so nesting rw inside mutex here would let a
        # monitoring poll stall the queue behind an in-flight write.
        with self._rw.read_locked():
            generation = self.store.generation
        # Copy under the mutex, compute outside it: percentiles sort
        # the (bounded) latency window, and the submit/dispatch hot
        # path must not stall behind a monitoring poll.
        with self._mutex:
            sample = self._latencies.snapshot()
            counters = dict(
                submitted=self._submitted, served=self._served,
                failed=self._failed, overloads=self._overloads,
                queue_depth=len(self._queue),
                max_queue_depth=self._max_queue_depth,
                batches=self._batches,
                batch_size_hist=dict(self._batch_sizes),
                coalesced=self._coalesced, direct=self._direct,
                writes=self._writes,
                generation=generation)
        return ServiceStats(
            p50_latency=LatencyReservoir.percentile(sample, 50.0),
            p99_latency=LatencyReservoir.percentile(sample, 99.0),
            latency_samples=len(sample),
            timestamp=time.time(),
            uptime_s=time.perf_counter() - self._started_mono,
            **counters)

    def __repr__(self) -> str:  # pragma: no cover
        state = "closed" if self.closed else "open"
        return (f"<SearchService {state} store={self.store!r} "
                f"max_batch={self.max_batch} max_wait={self.max_wait} "
                f"max_queue={self.max_queue}>")
