"""Serving-tier telemetry: counters, batch histogram, latency tails.

:class:`ServiceStats` is an immutable snapshot a
:class:`~fecam.service.SearchService` produces on demand — safe to read
while the dispatcher keeps serving.  Latency percentiles come from a
bounded reservoir of the most recent request latencies (enqueue to
completion), so the p50/p99 track current behavior instead of averaging
over the whole process lifetime.
"""

from __future__ import annotations

import math

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable

__all__ = ["LatencyReservoir", "ServiceStats"]


class LatencyReservoir:
    """Sliding window of the last ``capacity`` request latencies.

    ``percentile`` uses the nearest-rank method on a sorted copy; with
    the default window of a few thousand samples that is microseconds of
    work, paid only when a stats snapshot is requested.
    """

    def __init__(self, capacity: int = 4096):
        self._window: "deque[float]" = deque(maxlen=capacity)

    def record(self, latency: float) -> None:
        self._window.append(latency)

    def __len__(self) -> int:
        return len(self._window)

    def snapshot(self) -> "tuple[float, ...]":
        return tuple(self._window)

    @staticmethod
    def percentile(sample: Iterable[float], p: float) -> float:
        """Nearest-rank percentile of ``sample`` (0.0 when empty).

        ``p`` is validated before any work happens, so a bad percentile
        raises even for empty or huge samples instead of sorting first.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        ordered = sorted(sample)
        if not ordered:
            return 0.0
        rank = max(int(math.ceil(p / 100.0 * len(ordered))), 1)
        return ordered[rank - 1]


@dataclass(frozen=True)
class ServiceStats:
    """One immutable snapshot of a service's cumulative telemetry.

    ``coalesced`` counts requests served by a dispatch batch that held
    more than one request (the micro-batcher paid off); ``direct``
    counts requests that dispatched alone.  ``coalesced_ratio`` is their
    normalized split — 1.0 means every request rode a fused batch.
    """

    submitted: int          # requests accepted into the queue
    served: int             # futures completed with a result
    failed: int             # futures completed with an exception
    overloads: int          # submissions rejected by backpressure
    queue_depth: int        # requests waiting right now
    max_queue_depth: int    # high-water mark of the bounded queue
    batches: int            # dispatches issued to the store
    batch_size_hist: Dict[int, int] = field(default_factory=dict)
    coalesced: int = 0      # requests served in a batch of size > 1
    direct: int = 0         # requests served in a batch of size 1
    writes: int = 0         # write transactions applied via the service
    generation: int = 0     # store write-generation at snapshot time
    p50_latency: float = 0.0   # s, median request latency (window)
    p99_latency: float = 0.0   # s, tail request latency (window)
    latency_samples: int = 0   # how many latencies back the percentiles
    timestamp: float = 0.0     # wall clock when the snapshot was taken
    uptime_s: float = 0.0      # monotonic seconds since service start

    @property
    def mean_batch_size(self) -> float:
        total = sum(size * count
                    for size, count in self.batch_size_hist.items())
        return total / self.batches if self.batches else 0.0

    @property
    def coalesced_ratio(self) -> float:
        total = self.coalesced + self.direct
        return self.coalesced / total if total else 0.0

    @property
    def pending(self) -> int:
        """Requests accepted but not yet completed (either way)."""
        return self.submitted - self.served - self.failed

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe flat dict with an explicit, round-trippable schema.

        ``batch_size_hist`` is exported as a sorted list of
        ``{"size": int, "count": int}`` rows — ``json.dumps`` would
        silently stringify int dict keys, and the naive dict shape does
        not survive a dump/load cycle.  :meth:`from_dict` inverts this
        exactly.
        """
        return {
            "submitted": self.submitted, "served": self.served,
            "failed": self.failed, "overloads": self.overloads,
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "batches": self.batches,
            "batch_size_hist": [
                {"size": size, "count": count}
                for size, count in sorted(self.batch_size_hist.items())],
            "mean_batch_size": self.mean_batch_size,
            "coalesced": self.coalesced, "direct": self.direct,
            "coalesced_ratio": self.coalesced_ratio,
            "writes": self.writes, "generation": self.generation,
            "p50_latency_s": self.p50_latency,
            "p99_latency_s": self.p99_latency,
            "latency_samples": self.latency_samples,
            "timestamp": self.timestamp,
            "uptime_s": self.uptime_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ServiceStats":
        """Rebuild a snapshot from :meth:`as_dict` output (post-JSON).

        Derived values (``mean_batch_size``, ``coalesced_ratio``,
        ``pending``) are recomputed from the fields, not read back.
        """
        hist_rows = data.get("batch_size_hist", [])
        return cls(
            submitted=int(data["submitted"]), served=int(data["served"]),
            failed=int(data["failed"]), overloads=int(data["overloads"]),
            queue_depth=int(data["queue_depth"]),
            max_queue_depth=int(data["max_queue_depth"]),
            batches=int(data["batches"]),
            batch_size_hist={int(row["size"]): int(row["count"])
                             for row in hist_rows},
            coalesced=int(data.get("coalesced", 0)),
            direct=int(data.get("direct", 0)),
            writes=int(data.get("writes", 0)),
            generation=int(data.get("generation", 0)),
            p50_latency=float(data.get("p50_latency_s", 0.0)),
            p99_latency=float(data.get("p99_latency_s", 0.0)),
            latency_samples=int(data.get("latency_samples", 0)),
            timestamp=float(data.get("timestamp", 0.0)),
            uptime_s=float(data.get("uptime_s", 0.0)),
        )
