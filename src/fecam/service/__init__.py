"""`fecam.service` — the concurrent serving tier.

One :class:`SearchService` turns a single-caller
:class:`~fecam.store.CamStore` into a thread-safe query server: a
micro-batching dispatcher coalesces concurrent requests into fused
``search_batch`` calls, a writer-preferring :class:`RWLock` gives
writers exclusivity while readers search consistent snapshots, and
every result carries the write-generation it was computed at.

Typed failure modes live in :mod:`fecam.errors`
(:class:`~fecam.errors.ServiceOverloaded`,
:class:`~fecam.errors.ServiceClosed`); telemetry in
:class:`ServiceStats`.
"""

from ..errors import ServiceClosed, ServiceError, ServiceOverloaded
from .locks import RWLock
from .service import SearchService, ServedResult
from .stats import LatencyReservoir, ServiceStats

__all__ = ["SearchService", "ServedResult", "ServiceStats",
           "LatencyReservoir", "RWLock", "ServiceError", "ServiceClosed",
           "ServiceOverloaded"]
