"""Tests for the unified metrics API (DesignPoint / evaluate / sweep)."""

import numpy as np
import pytest

from fecam.arch import PAPER_TABLE4, clear_cache, evaluate_array
from fecam.cam.word import WordTimings
from fecam.designs import DesignKind
from fecam.errors import OperationError
from fecam.metrics import (ANALYTICAL_ENERGY_FACTOR,
                           ANALYTICAL_LATENCY_FACTOR, DesignPoint,
                           FIDELITIES, Fom, clear_registry, evaluate,
                           registry_size, sweep, sweep_records)

# Stated cross-tier tolerance, shared with the fidelity benchmark: the
# closed-form tier must agree with SPICE within these factors.
LATENCY_FACTOR = ANALYTICAL_LATENCY_FACTOR
ENERGY_FACTOR = ANALYTICAL_ENERGY_FACTOR


class TestDesignPoint:
    def test_defaults_and_equality(self):
        a = DesignPoint(DesignKind.DG_1T5)
        b = DesignPoint(DesignKind.DG_1T5, word_length=64, rows=64, banks=1)
        assert a == b
        assert hash(a) == hash(b)

    def test_frozen(self):
        point = DesignPoint(DesignKind.DG_1T5)
        with pytest.raises(AttributeError):
            point.rows = 128

    def test_validation(self):
        with pytest.raises(OperationError):
            DesignPoint(DesignKind.DG_1T5, word_length=1)
        with pytest.raises(OperationError):
            DesignPoint(DesignKind.DG_1T5, rows=0)
        with pytest.raises(OperationError):
            DesignPoint(DesignKind.DG_1T5, banks=0)
        with pytest.raises(OperationError):
            DesignPoint(DesignKind.DG_1T5, step1_miss_rate=1.5)
        with pytest.raises(OperationError):
            DesignPoint("not-a-design")

    def test_mapping_timings_normalized(self):
        """Dict overrides become a hashable WordTimings — and key equal
        to the explicitly-constructed plan (the legacy cache broke on
        unhashable overrides)."""
        from_dict = DesignPoint(DesignKind.DG_1T5,
                                timings={"t_step": 2e-9})
        explicit = DesignPoint(DesignKind.DG_1T5,
                               timings=WordTimings(t_step=2e-9))
        assert isinstance(from_dict.timings, WordTimings)
        assert from_dict == explicit
        assert from_dict.key("analytical") == explicit.key("analytical")

    def test_default_timings_fold_to_none(self):
        """An all-defaults plan (or empty mapping) is the same point as
        no override at all — one registry slot, no duplicate SPICE."""
        assert DesignPoint(DesignKind.DG_1T5, timings={}).timings is None
        assert DesignPoint(DesignKind.DG_1T5,
                           timings=WordTimings()).timings is None
        assert (DesignPoint(DesignKind.DG_1T5, timings={})
                == DesignPoint(DesignKind.DG_1T5))

    def test_key_rounds_miss_rate(self):
        a = DesignPoint(DesignKind.DG_1T5, step1_miss_rate=0.9)
        b = DesignPoint(DesignKind.DG_1T5, step1_miss_rate=0.90004)
        assert a.key("paper") == b.key("paper")


class TestEvaluateValidation:
    def test_bad_fidelity(self):
        with pytest.raises(OperationError):
            evaluate(DesignPoint(DesignKind.DG_1T5), "hdl")

    def test_needs_design_point(self):
        with pytest.raises(OperationError):
            evaluate(DesignKind.DG_1T5, "paper")

    def test_fidelities_constant(self):
        assert FIDELITIES == ("paper", "analytical", "spice")


class TestPaperTier:
    def test_reproduces_table4_exactly(self):
        """Every non-None published Table IV figure comes back verbatim."""
        for design in DesignKind:
            row = evaluate(DesignPoint(design), "paper").as_row()
            for key, published in PAPER_TABLE4[design].items():
                if published is None:
                    continue
                assert row[key] == published, (design, key)

    def test_missing_1step_falls_back_to_total(self):
        fom = evaluate(DesignPoint(DesignKind.SG_2FEFET), "paper")
        assert fom.latency_1step == fom.latency_total
        assert fom.search_energy_1step == fom.search_energy_total

    def test_custom_miss_rate_reweights(self):
        lo = evaluate(DesignPoint(DesignKind.SG_1T5, step1_miss_rate=1.0),
                      "paper")
        hi = evaluate(DesignPoint(DesignKind.SG_1T5, step1_miss_rate=0.0),
                      "paper")
        assert lo.search_energy_avg == pytest.approx(lo.search_energy_1step)
        assert hi.search_energy_avg == pytest.approx(hi.search_energy_total)

    def test_paper_tier_is_instant(self):
        """No transient simulation behind the paper tier (call-counted)."""
        import fecam.cam.word as word_mod

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("paper tier invoked the SPICE tier")

        original = word_mod.simulate_word_search
        clear_registry()
        word_mod.simulate_word_search = boom
        try:
            for design in DesignKind:
                evaluate(DesignPoint(design), "paper")
                evaluate(DesignPoint(design), "analytical")
        finally:
            word_mod.simulate_word_search = original
            clear_registry()


class TestCrossTierConsistency:
    @pytest.mark.parametrize("design", DesignKind.fefet_designs(),
                             ids=lambda d: d.name)
    def test_analytical_agrees_with_spice(self, design):
        quick = evaluate(DesignPoint(design, word_length=32), "analytical")
        truth = evaluate(DesignPoint(design, word_length=32), "spice")
        for attr, factor in (("latency_1step", LATENCY_FACTOR),
                             ("latency_total", LATENCY_FACTOR),
                             ("search_energy_1step", ENERGY_FACTOR),
                             ("search_energy_total", ENERGY_FACTOR),
                             ("search_energy_avg", ENERGY_FACTOR)):
            ratio = getattr(quick, attr) / getattr(truth, attr)
            assert 1.0 / factor < ratio < factor, (design, attr, ratio)

    def test_area_and_write_identical_across_computed_tiers(self):
        """Geometry and the write tier are closed-form everywhere."""
        quick = evaluate(DesignPoint(DesignKind.DG_1T5, word_length=32),
                         "analytical")
        truth = evaluate(DesignPoint(DesignKind.DG_1T5, word_length=32),
                         "spice")
        assert quick.cell_area == truth.cell_area
        assert quick.macro_area == truth.macro_area
        assert quick.write_energy_per_cell == truth.write_energy_per_cell
        assert quick.write_voltage == truth.write_voltage

    def test_legacy_front_door_is_the_spice_tier(self):
        legacy = evaluate_array(DesignKind.DG_1T5, word_length=32)
        fom = evaluate(DesignPoint(DesignKind.DG_1T5, word_length=32),
                       "spice")
        assert legacy is fom  # same registry slot, same object
        assert isinstance(legacy, Fom)


class TestRegistry:
    def test_cache_hits_are_identical_objects(self):
        a = evaluate(DesignPoint(DesignKind.SG_1T5), "paper")
        b = evaluate(DesignPoint(DesignKind.SG_1T5), "paper")
        assert a is b

    def test_deterministic_across_clear(self):
        point = DesignPoint(DesignKind.DG_1T5, word_length=48)
        first = evaluate(point, "analytical")
        clear_registry()
        second = evaluate(point, "analytical")
        assert first is not second
        assert first == second

    def test_legacy_clear_cache_alias(self):
        evaluate(DesignPoint(DesignKind.SG_1T5), "paper")
        assert registry_size() > 0
        clear_cache()  # the fecam.arch name
        assert registry_size() == 0

    def test_timings_override_shares_slot_with_equivalent(self):
        a = evaluate(DesignPoint(DesignKind.DG_1T5,
                                 timings={"t_gap": 0.6e-9}), "paper")
        b = evaluate(DesignPoint(DesignKind.DG_1T5,
                                 timings=WordTimings(t_gap=0.6e-9)),
                     "paper")
        assert a is b

    def test_timings_only_key_the_spice_tier(self):
        """Paper/analytical have no transient schedule to override: every
        timing variant of a point shares their one cached answer instead
        of fragmenting the registry with identical Foms."""
        base = DesignPoint(DesignKind.DG_1T5)
        tweaked = DesignPoint(DesignKind.DG_1T5, timings={"t_step": 5e-9})
        for fidelity in ("paper", "analytical"):
            assert evaluate(base, fidelity) is evaluate(tweaked, fidelity)
        assert base.key("spice") != tweaked.key("spice")

    def test_unsupported_timings_type_rejected(self):
        """A list of pairs must fail at construction with a named error,
        not as a bare TypeError inside the registry lookup."""
        with pytest.raises(OperationError):
            DesignPoint(DesignKind.DG_1T5, timings=[("t_step", 2e-9)])

    def test_spice_tier_accepts_mapping_timings(self):
        """The legacy cache raised TypeError on dict overrides."""
        fom = evaluate_array(DesignKind.DG_1T5, word_length=16,
                             timings={"dt": 25e-12})
        assert fom.latency_total > 0


class TestFom:
    def test_edp_consistent(self):
        fom = evaluate(DesignPoint(DesignKind.DG_1T5), "paper")
        assert fom.edp == pytest.approx(
            fom.search_energy_avg * fom.word_length * fom.latency_total)
        assert fom.as_row()["edp_fj_ns"] > 0

    def test_banks_scale_macro_area(self):
        one = evaluate(DesignPoint(DesignKind.DG_1T5, banks=1), "paper")
        four = evaluate(DesignPoint(DesignKind.DG_1T5, banks=4), "paper")
        assert four.macro_area > 3.9 * one.macro_area  # + global encoder
        assert four.driver_count == 4 * one.driver_count
        assert four.encoder_delay > one.encoder_delay
        # Per-bit search figures are bank-independent.
        assert four.search_energy_avg == one.search_energy_avg


class TestSweep:
    def test_columnar_shape_and_order(self):
        table = sweep(designs=(DesignKind.SG_1T5, DesignKind.DG_1T5),
                      word_lengths=(16, 64), fidelity="paper")
        assert len(table["design"]) == 4
        assert table["design"].tolist() == ["1.5T1SG-Fe", "1.5T1SG-Fe",
                                            "1.5T1DG-Fe", "1.5T1DG-Fe"]
        assert table["word_length"].tolist() == [16, 64, 16, 64]
        assert table["energy_avg_fj"].dtype == np.float64

    def test_cmos_write_energy_is_nan(self):
        table = sweep(designs=(DesignKind.CMOS_16T,), fidelity="paper")
        assert np.isnan(table["write_energy_fj"][0])

    def test_analytical_latency_grows_with_word_length(self):
        table = sweep(designs=(DesignKind.DG_1T5,),
                      word_lengths=(16, 32, 64, 128),
                      fidelity="analytical")
        lat = table["latency_total_ps"]
        assert (np.diff(lat) > 0).all()

    def test_records_transpose(self):
        table = sweep(designs=(DesignKind.SG_1T5,), fidelity="paper")
        records = sweep_records(table)
        assert len(records) == 1
        assert records[0]["design"] == "1.5T1SG-Fe"
        assert records[0]["word_length"] == 64
        assert isinstance(records[0]["energy_avg_fj"], float)
