"""Fidelity integration: frozen EnergyModel, StoreConfig.fidelity, and
the no-SPICE guarantee for analytical/paper-priced stores."""

import dataclasses

import pytest

import fecam.cam.word as word_mod
from fecam.arch import evaluate_array
from fecam.designs import DesignKind
from fecam.errors import OperationError
from fecam.functional import EnergyModel, TernaryCAM
from fecam.metrics import clear_registry
from fecam.store import CamStore, StoreConfig


class _SpiceCounter:
    """Counts (and optionally fakes) word-level SPICE invocations."""

    def __init__(self, fake=False):
        self.calls = 0
        self.fake = fake
        self._original = word_mod.simulate_word_search

    def __enter__(self):
        clear_registry()
        word_mod.simulate_word_search = self._stub
        return self

    def __exit__(self, *exc):
        word_mod.simulate_word_search = self._original
        clear_registry()

    def _stub(self, *args, **kwargs):
        self.calls += 1
        if not self.fake:
            return self._original(*args, **kwargs)

        class _Fake:
            latency = 1e-9
            energy_per_bit = 1e-15
        return _Fake()


class TestFrozenEnergyModel:
    def test_fields_immutable(self):
        model = EnergyModel(DesignKind.DG_1T5, 8)
        with pytest.raises(dataclasses.FrozenInstanceError):
            model.e_1step_per_bit = 1e-15

    def test_resolve_returns_new_instance(self):
        model = EnergyModel(DesignKind.DG_1T5, 8, fidelity="paper")
        resolved = model.resolve()
        assert resolved is not model
        assert model.e_1step_per_bit is None  # original untouched
        assert resolved.e_1step_per_bit is not None
        assert resolved.resolve() is resolved  # already priced

    def test_explicit_fields_resolve_to_self(self):
        model = EnergyModel(DesignKind.DG_1T5, 8, e_1step_per_bit=1e-15,
                            e_2step_per_bit=2e-15, latency_1step=1e-9,
                            latency_2step=2e-9,
                            write_energy_per_cell=0.4e-15)
        assert model.resolve() is model

    def test_bad_fidelity_rejected(self):
        with pytest.raises(OperationError):
            EnergyModel(DesignKind.DG_1T5, 8, fidelity="verilog")

    def test_shared_model_not_cross_contaminated(self):
        """One unresolved model shared by two arrays stays unresolved in
        the sharer's hands; each array keeps its own priced copy."""
        shared = EnergyModel(DesignKind.DG_1T5, 8, fidelity="paper")
        a = TernaryCAM(rows=2, width=8, energy_model=shared)
        b = TernaryCAM(rows=2, width=8, energy_model=shared)
        a.write(0, "10101010")
        assert shared.e_1step_per_bit is None
        assert a.energy_model.resolved
        assert not b.energy_model.resolved  # b has not priced anything yet
        b.write(0, "10101010")
        assert a.energy_spent == b.energy_spent

    def test_what_if_swap_takes_effect(self):
        cam = TernaryCAM(rows=1, width=8, energy_model=EnergyModel(
            DesignKind.DG_1T5, 8, e_1step_per_bit=1e-15,
            e_2step_per_bit=2e-15, latency_1step=1e-9, latency_2step=2e-9,
            write_energy_per_cell=0.0))
        cam.write(0, "11111111")
        before = cam.search("11111111").energy
        cam.energy_model = dataclasses.replace(cam.energy_model,
                                               e_2step_per_bit=4e-15)
        after = cam.search("11111111").energy
        assert after == pytest.approx(2 * before)

    def test_default_resolution_matches_legacy_spice_path(self):
        resolved = EnergyModel(DesignKind.DG_1T5, 16).resolve()
        fom = evaluate_array(DesignKind.DG_1T5, word_length=16)
        assert resolved.fidelity == "spice"
        assert resolved.e_1step_per_bit == fom.search_energy_1step
        assert resolved.e_2step_per_bit == fom.search_energy_total
        assert resolved.latency_1step == fom.latency_1step
        assert resolved.latency_2step == fom.latency_total
        assert resolved.write_energy_per_cell == fom.write_energy_per_cell


class TestStoreFidelity:
    def test_config_validates_fidelity(self):
        with pytest.raises(OperationError):
            StoreConfig(width=8, rows=4, fidelity="fast")

    def test_default_fidelity_is_spice(self):
        config = StoreConfig(width=8, rows=4)
        assert config.fidelity == "spice"
        assert config.resolve_energy_model().fidelity == "spice"

    def test_explicit_priced_model_wins_over_fidelity(self):
        model = EnergyModel(DesignKind.DG_1T5, 8, e_1step_per_bit=1e-15,
                            e_2step_per_bit=2e-15, latency_1step=1e-9,
                            latency_2step=2e-9, write_energy_per_cell=0.0)
        config = StoreConfig(width=8, rows=4, energy_model=model,
                             fidelity="analytical")
        assert config.resolve_energy_model() is model

    def test_unresolved_model_fidelity_conflict_rejected(self):
        """An unpriced explicit model whose fidelity contradicts the
        config's would silently re-route pricing; it must raise."""
        config = StoreConfig(width=8, rows=4,
                             energy_model=EnergyModel(DesignKind.DG_1T5, 8),
                             fidelity="analytical")
        with pytest.raises(OperationError):
            config.resolve_energy_model()
        with pytest.raises(OperationError):
            CamStore(config)
        # Aligned fidelities pass through untouched.
        aligned = StoreConfig(
            width=8, rows=4, fidelity="analytical",
            energy_model=EnergyModel(DesignKind.DG_1T5, 8,
                                     fidelity="analytical"))
        assert aligned.resolve_energy_model().fidelity == "analytical"

    @pytest.mark.parametrize("banks", [1, 4], ids=["array", "fabric"])
    def test_analytical_store_never_invokes_spice(self, banks):
        """The acceptance guarantee: an analytical-fidelity store builds
        and prices searches with zero SPICE-tier calls, on both
        backends."""
        with _SpiceCounter() as counter:
            store = CamStore(StoreConfig(width=8, rows=8, banks=banks,
                                         fidelity="analytical"))
            store.insert("1010XXXX", key="r0")
            result = store.search("10101111")
            assert result.best.key == "r0"
            assert result.energy > 0
            assert result.latency > 0
            assert counter.calls == 0

    def test_paper_store_never_invokes_spice(self):
        with _SpiceCounter() as counter:
            store = CamStore(StoreConfig(width=8, rows=4,
                                         fidelity="paper"))
            store.insert("1111XXXX", key="r0")
            store.search("11111111")
            assert counter.calls == 0

    def test_spice_store_invokes_spice_tier(self):
        """Default fidelity still resolves through the transient tier
        (two scenario runs for a two-step design)."""
        with _SpiceCounter(fake=True) as counter:
            store = CamStore(StoreConfig(width=8, rows=4))
            store.insert("1010XXXX", key="r0")
            store.search("10101111")
            assert counter.calls == 2  # step1_miss + step2_miss

    def test_fidelity_tiers_price_differently(self):
        """Same workload, different tier, different (all nonzero) cost —
        the knob actually reaches the pricing."""
        energies = {}
        for fidelity in ("paper", "analytical"):
            store = CamStore(StoreConfig(width=16, rows=4,
                                         fidelity=fidelity))
            store.insert("1010" * 4, key="r0")
            energies[fidelity] = store.search("1010" * 4).energy
        assert energies["paper"] > 0
        assert energies["analytical"] > 0
        assert energies["paper"] != energies["analytical"]
