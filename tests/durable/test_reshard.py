"""Resharding: inline geometry changes and the live three-phase swap.

The live test is the ISSUE's acceptance scenario: grow 4 -> 16 banks
while 4 writer + 4 reader threads hammer the service, with zero failed
requests, a recorded write-locked pause, and a recovered store that is
bit-identical to the survivor.
"""

import random
import threading

import pytest

from durable_utils import (KEYSPACE, assert_stores_identical, make_config,
                           make_durable, random_word, reference_replay,
                           WIDTH)
from fecam.durable import recover, reshard, reshard_inline
from fecam.errors import DurabilityError, OperationError
from fecam.service import SearchService
from fecam.store import CamStore, StoreConfig


def populate(store, n=12):
    rng = random.Random(7)
    for i in range(n):
        store.insert(random_word(rng), key=f"k{i}",
                     priority=float(i % 5))


class TestInlineReshard:
    def test_grow_4_to_16_preserves_entries_and_recovers(self, wal_dir):
        store = make_durable(wal_dir)
        populate(store)
        before = sorted((m.key, m.word, m.priority, m.seq)
                        for m in store.entries())
        report = reshard_inline(store, banks=16)
        assert (report.old_banks, report.new_banks) == (4, 16)
        assert report.entries == 12 and report.drained_ops == 0
        assert store.config.banks == 16
        assert sorted((m.key, m.word, m.priority, m.seq)
                      for m in store.entries()) == before
        store.close()
        recovered = recover(wal_dir, fsync="off")
        assert recovered.config.banks == 16
        ref, _records = reference_replay(wal_dir, make_config())
        assert_stores_identical(ref, recovered)
        assert_stores_identical(store, recovered)
        recovered.close()

    def test_shrink_to_one_bank_becomes_array(self, wal_dir):
        store = make_durable(wal_dir)
        populate(store, n=6)
        reshard_inline(store, banks=1)
        assert store.backend.name == "array"
        store.insert("1" * WIDTH, key="post")
        store.close()
        recovered = recover(wal_dir, fsync="off")
        assert recovered.backend.name == "array"
        assert_stores_identical(store, recovered)
        recovered.close()

    def test_capacity_exceeded_aborts_cleanly(self, wal_dir):
        store = make_durable(wal_dir)
        populate(store)
        generation = store.generation
        backend = store.backend
        with pytest.raises(OperationError):
            # 8 banks x 1 row cannot hold 12 striped entries.
            reshard_inline(store, banks=8, rows=8)
        # Old geometry untouched, nothing logged, guard released.
        assert store.backend is backend
        assert store.generation == generation
        assert store.config.banks == 4
        report = reshard_inline(store, banks=2)
        assert report.new_banks == 2
        store.close()
        recovered = recover(wal_dir, fsync="off")
        assert_stores_identical(store, recovered)
        recovered.close()

    def test_single_flight_guard(self, wal_dir):
        store = make_durable(wal_dir)
        assert store._reshard_guard.acquire(blocking=False)
        try:
            with pytest.raises(DurabilityError, match="in flight"):
                reshard_inline(store, banks=2)
        finally:
            store._reshard_guard.release()
        store.close()

    def test_plain_store_rejected(self, wal_dir):
        store = CamStore(make_config())
        with pytest.raises(DurabilityError, match="DurableCamStore"):
            reshard_inline(store, banks=2)


class TestLiveReshard:
    def test_grow_under_live_traffic_zero_failures(self, wal_dir):
        config = StoreConfig(width=WIDTH, rows=256, banks=4,
                             energy_model=make_config().energy_model)
        store = make_durable(wal_dir, config)
        populate(store)
        fails = []
        stop = threading.Event()

        def writer(wid):
            rng = random.Random(1000 + wid)
            try:
                for i in range(40):
                    key = rng.choice(KEYSPACE)
                    word = random_word(rng)

                    def txn(st):
                        if key in st:
                            if rng.random() < 0.3:
                                st.delete(key)
                            else:
                                st.update(key, word)
                        else:
                            st.insert(word, key=key)

                    service.write(txn)
            except Exception as exc:  # noqa: BLE001 - the assert is the point
                fails.append(("writer", wid, exc))

        def reader(rid):
            rng = random.Random(2000 + rid)
            try:
                while not stop.is_set():
                    probe = "".join(rng.choice("01") for _ in range(WIDTH))
                    service.search(probe)
            except Exception as exc:  # noqa: BLE001
                fails.append(("reader", rid, exc))

        with SearchService(store, max_batch=16) as service:
            writers = [threading.Thread(target=writer, args=(w,))
                       for w in range(4)]
            readers = [threading.Thread(target=reader, args=(r,))
                       for r in range(4)]
            for t in writers + readers:
                t.start()
            report = reshard(service, banks=16)
            for t in writers:
                t.join()
            stop.set()
            for t in readers:
                t.join()

        assert not fails
        assert (report.old_banks, report.new_banks) == (4, 16)
        assert report.pause_s >= 0.0
        assert store.config.banks == 16
        store.close()
        recovered = recover(wal_dir, fsync="off")
        ref, records = reference_replay(wal_dir, config)
        assert any(op[0] == "reshard" for _g, op in records)
        assert_stores_identical(ref, recovered)
        assert_stores_identical(store, recovered)
        recovered.close()

    def test_service_over_plain_store_rejected(self):
        store = CamStore(make_config())
        with SearchService(store) as service:
            with pytest.raises(DurabilityError, match="DurableCamStore"):
                reshard(service, banks=8)
