"""Snapshot lifecycle and `recover()` — the happy and torn paths."""

import os

import pytest

from durable_utils import (assert_stores_identical, make_config,
                           make_durable, reference_replay)
from fecam.durable import (DurableCamStore, DurabilityConfig, recover,
                           snapshot_candidates)
from fecam.durable.wal import list_segments
from fecam.errors import DurabilityError


class TestSnapshotLifecycle:
    def test_fresh_store_writes_a_baseline_snapshot(self, wal_dir):
        store = make_durable(wal_dir)
        assert store.snapshot_generation == 0
        assert store.snapshots_taken == 1
        assert len(snapshot_candidates(wal_dir)) == 1
        store.close()

    def test_snapshot_advances_generation_and_counts(self, wal_dir):
        store = make_durable(wal_dir)
        store.insert("1010XXXX", key="a")
        store.insert("0101XXXX", key="b")
        path = store.snapshot()
        assert os.path.exists(path)
        assert store.snapshot_generation == store.generation == 2
        assert store.snapshots_taken == 2
        store.close()

    def test_snapshot_every_autosnapshots(self, wal_dir):
        store = make_durable(wal_dir, snapshot_every=3)
        for i in range(7):
            store.insert("10XX10XX", key=f"k{i}")
        # Baseline + after ops 3 and 6.
        assert store.snapshots_taken == 3
        store.close()

    def test_compact_on_snapshot_trims_the_journal(self, wal_dir):
        store = DurableCamStore(
            make_config(),
            durability=DurabilityConfig(
                directory=wal_dir, fsync="off", segment_bytes=192,
                compact_on_snapshot=True))
        for i in range(12):
            store.insert("1X0X1X0X", key=f"k{i}", payload="p" * 40)
        assert len(list_segments(wal_dir)) > 1
        store.snapshot()
        # Everything is folded into the snapshot: only the newest
        # segment may remain.
        assert len(list_segments(wal_dir)) == 1
        recovered = recover(wal_dir, fsync="off")
        assert recovered.recovered_records == 0
        assert_stores_identical(store, recovered)
        store.close()
        recovered.close()

    def test_on_snapshot_callback_sees_duration(self, wal_dir):
        store = make_durable(wal_dir)
        seen = []
        store.on_snapshot = seen.append
        store.snapshot()
        assert len(seen) == 1 and seen[0] >= 0.0
        store.close()


class TestRecovery:
    def test_recover_is_snapshot_plus_tail(self, wal_dir):
        store = make_durable(wal_dir)
        store.insert("1010XXXX", key="a", priority=2.0)
        store.insert("0101XXXX", key="b", priority=1.0)
        store.snapshot()
        store.insert("10X10X1X", key="c")
        store.update("a", "111100XX")
        store.delete("b")
        store.close()
        recovered = recover(wal_dir, fsync="off")
        # Only the three post-snapshot records replay.
        assert recovered.recovered_records == 3
        ref, _records = reference_replay(wal_dir, make_config())
        assert_stores_identical(ref, recovered)
        assert_stores_identical(store, recovered)
        recovered.close()

    def test_recover_empty_directory_raises(self, wal_dir):
        with pytest.raises(DurabilityError, match="no valid snapshot"):
            recover(wal_dir)

    def test_corrupt_newest_snapshot_falls_back_to_older(self, wal_dir):
        store = make_durable(wal_dir)
        store.insert("1010XXXX", key="a")
        store.snapshot()
        store.insert("0101XXXX", key="b")
        newest = store.snapshot()
        store.close()
        with open(newest, "r+b") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            fh.truncate(size // 2)
        recovered = recover(wal_dir, fsync="off")
        # Fallback snapshot is at generation 1; record 2 replays on top.
        assert recovered.recovered_records == 1
        assert_stores_identical(store, recovered)
        recovered.close()

    def test_all_snapshots_corrupt_raises_with_detail(self, wal_dir):
        store = make_durable(wal_dir)
        store.insert("1010XXXX", key="a")
        store.close()
        for path in snapshot_candidates(wal_dir):
            with open(path, "wb") as fh:
                fh.write(b"garbage")
        with pytest.raises(DurabilityError, match="no valid snapshot"):
            recover(wal_dir)

    def test_fresh_construction_on_existing_wal_refuses(self, wal_dir):
        store = make_durable(wal_dir)
        store.insert("1010XXXX", key="a")
        store.close()
        with pytest.raises(DurabilityError, match="recover"):
            make_durable(wal_dir)

    def test_recovered_store_keeps_journaling(self, wal_dir):
        store = make_durable(wal_dir)
        store.insert("1010XXXX", key="a")
        store.close()
        recovered = recover(wal_dir, fsync="off")
        recovered.insert("0101XXXX", key="b")
        recovered.close()
        again = recover(wal_dir, fsync="off")
        assert_stores_identical(recovered, again)
        assert sorted(m.key for m in again.entries()) == ["a", "b"]
        again.close()

    def test_array_backend_roundtrip(self, wal_dir):
        config = make_config(banks=1)
        store = make_durable(wal_dir, config)
        assert store.backend.name == "array"
        store.insert("1010XXXX", key="a", priority=3.0)
        store.insert("0101XXXX", key="b", priority=1.0)
        store.update("a", "1111XXXX")
        store.close()
        recovered = recover(wal_dir, fsync="off")
        assert recovered.backend.name == "array"
        assert_stores_identical(store, recovered)
        recovered.close()

    def test_context_manager_closes_the_wal(self, wal_dir):
        with make_durable(wal_dir) as store:
            store.insert("1010XXXX", key="a")
        recovered = recover(wal_dir, fsync="off")
        assert [m.key for m in recovered.entries()] == ["a"]
        recovered.close()

    def test_insert_many_and_payloads_roundtrip(self, wal_dir):
        store = make_durable(wal_dir)
        store.insert_many(["1010XXXX", "0101XXXX", "11XX00XX"],
                          keys=["a", "b", "c"],
                          priorities=[3.0, 1.0, 2.0],
                          payloads=[{"port": 1}, None, [7]])
        store.delete("b")
        store.close()
        recovered = recover(wal_dir, fsync="off")
        assert_stores_identical(store, recovered)
        payloads = {m.key: m.payload for m in recovered.entries()}
        assert payloads == {"a": {"port": 1}, "c": [7]}
        recovered.close()
