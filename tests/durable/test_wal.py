"""WAL mechanics: framing, rotation, torn tails, density, compaction."""

import os

import pytest

from fecam.durable import WriteAheadLog
from fecam.durable.records import WAL_MAGIC, encode_frame
from fecam.durable.wal import list_segments
from fecam.errors import DurabilityError


def make_wal(directory, **kw):
    kw.setdefault("fsync", "off")
    return WriteAheadLog(directory, **kw)


class TestAppendScan:
    def test_roundtrip_preserves_records_and_generations(self, wal_dir):
        wal = make_wal(wal_dir)
        ops = [("insert", f"word{i}", f"k{i}", float(i), None, i)
               for i in range(20)]
        for i, op in enumerate(ops, start=1):
            wal.append(i, op)
        wal.close()
        assert make_wal(wal_dir).scan() == list(enumerate(ops, start=1))

    def test_scan_sees_unclosed_appends(self, wal_dir):
        wal = make_wal(wal_dir)
        wal.append(1, ("delete", "k"))
        # No close(): append flushes, so the record is scannable.
        assert make_wal(wal_dir).scan() == [(1, ("delete", "k"))]
        wal.close()

    def test_payloads_roundtrip_arbitrary_picklables(self, wal_dir):
        wal = make_wal(wal_dir)
        op = ("insert_many", ["01X", "X10"], [("auto", 3), "k"],
              [0.5, 1.5], [None, {"tag": 7}], [3, 4])
        wal.append(1, op)
        wal.close()
        assert make_wal(wal_dir).scan() == [(1, op)]

    def test_counters_and_callbacks(self, wal_dir):
        wal = make_wal(wal_dir, fsync="always")
        appended, synced = [], []
        wal.on_append = lambda s, n: appended.append((s, n))
        wal.on_fsync = synced.append
        for i in range(1, 4):
            wal.append(i, ("delete", f"k{i}"))
        wal.close()
        assert wal.appended_records == 3
        assert wal.fsyncs == 3
        assert len(appended) == 3
        assert len(synced) == 3
        assert wal.appended_bytes == sum(n for _s, n in appended)

    def test_interval_policy_syncs_less_than_always(self, wal_dir):
        wal = make_wal(wal_dir, fsync="interval", fsync_interval_s=3600)
        for i in range(1, 11):
            wal.append(i, ("delete", f"k{i}"))
        # Interval far in the future: only the first append (interval
        # elapsed since construction is 0 but the clock check uses the
        # last sync time) and the close() barrier sync.
        assert wal.fsyncs <= 2
        wal.close()
        assert wal.fsyncs <= 3

    def test_bad_policy_rejected(self, wal_dir):
        with pytest.raises(DurabilityError):
            WriteAheadLog(wal_dir, fsync="sometimes")


class TestRotation:
    def test_rotates_at_threshold_and_names_by_first_generation(
            self, wal_dir):
        wal = make_wal(wal_dir, segment_bytes=256)
        for i in range(1, 31):
            wal.append(i, ("insert", "X" * 40, f"key{i}", float(i),
                           None, i))
        wal.close()
        segments = list_segments(wal_dir)
        assert len(segments) > 1
        # Every segment's first record matches its name; the full scan
        # is still one dense generation sequence.
        records = make_wal(wal_dir).scan()
        assert [g for g, _ in records] == list(range(1, 31))
        firsts = [int(os.path.basename(p)[4:-4]) for p in segments]
        assert firsts == sorted(firsts)
        assert firsts[0] == 1

    def test_append_continues_last_segment_after_reopen(self, wal_dir):
        wal = make_wal(wal_dir)
        wal.append(1, ("delete", "a"))
        wal.close()
        wal2 = make_wal(wal_dir)
        wal2.append(2, ("delete", "b"))
        wal2.close()
        assert len(list_segments(wal_dir)) == 1
        assert [g for g, _ in make_wal(wal_dir).scan()] == [1, 2]


class TestTornTails:
    def test_torn_tail_is_dropped_and_repaired(self, wal_dir):
        wal = make_wal(wal_dir)
        for i in range(1, 4):
            wal.append(i, ("delete", f"k{i}"))
        wal.close()
        path = list_segments(wal_dir)[0]
        intact = os.path.getsize(path)
        with open(path, "ab") as fh:
            fh.write(encode_frame(4, ("delete", "k4"))[:11])
        reader = make_wal(wal_dir)
        assert [g for g, _ in reader.scan()] == [1, 2, 3]
        reader.scan(repair=True)
        assert os.path.getsize(path) == intact

    def test_append_after_repair_leaves_no_gap(self, wal_dir):
        wal = make_wal(wal_dir)
        wal.append(1, ("delete", "a"))
        wal.close()
        path = list_segments(wal_dir)[0]
        with open(path, "ab") as fh:
            fh.write(b"\x00\x01garbage")
        wal2 = make_wal(wal_dir)
        wal2.scan(repair=True)
        wal2.append(2, ("delete", "b"))
        wal2.close()
        assert make_wal(wal_dir).scan() == [
            (1, ("delete", "a")), (2, ("delete", "b"))]

    def test_recordless_torn_segment_is_deleted(self, wal_dir):
        path = os.path.join(wal_dir, f"wal-{1:016d}.log")
        with open(path, "wb") as fh:
            fh.write(WAL_MAGIC[:4])  # crash mid-preamble
        wal = make_wal(wal_dir)
        assert wal.scan(repair=True) == []
        assert list_segments(wal_dir) == []

    def test_mid_log_tear_is_corruption_not_a_tail(self, wal_dir):
        wal = make_wal(wal_dir, segment_bytes=64)
        for i in range(1, 9):
            wal.append(i, ("insert", "X" * 30, f"k{i}", float(i),
                           None, i))
        wal.close()
        first, *_rest = list_segments(wal_dir)
        with open(first, "ab") as fh:
            fh.write(b"torn")
        with pytest.raises(DurabilityError, match="mid-log"):
            make_wal(wal_dir).scan()

    def test_corrupt_crc_truncates_from_the_flip(self, wal_dir):
        wal = make_wal(wal_dir)
        for i in range(1, 4):
            wal.append(i, ("delete", f"k{i}"))
        wal.close()
        path = list_segments(wal_dir)[0]
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(size - 1)
            last = fh.read(1)[0]
            fh.seek(size - 1)
            fh.write(bytes([last ^ 0xFF]))
        assert [g for g, _ in make_wal(wal_dir).scan()] == [1, 2]


class TestInvariants:
    def test_generation_gap_raises(self, wal_dir):
        wal = make_wal(wal_dir)
        wal.append(1, ("delete", "a"))
        wal.append(5, ("delete", "b"))  # the log must be dense
        wal.close()
        with pytest.raises(DurabilityError, match="dense"):
            make_wal(wal_dir).scan()

    def test_foreign_magic_raises(self, wal_dir):
        path = os.path.join(wal_dir, f"wal-{1:016d}.log")
        with open(path, "wb") as fh:
            fh.write(b"NOTAWAL!" + b"\x00" * 32)
        with pytest.raises(DurabilityError, match="magic"):
            make_wal(wal_dir).scan()


class TestCompaction:
    def test_compact_deletes_only_covered_segments(self, wal_dir):
        wal = make_wal(wal_dir, segment_bytes=128)
        for i in range(1, 21):
            wal.append(i, ("insert", "X" * 30, f"k{i}", float(i),
                           None, i))
        segments = list_segments(wal_dir)
        assert len(segments) >= 3
        boundary = int(os.path.basename(segments[2])[4:-4])
        deleted = wal.compact(boundary - 1)
        assert deleted == 2
        # Everything from the boundary on survives, still dense.
        records = wal.scan()
        assert records[0][0] == boundary
        assert [g for g, _ in records] == list(range(boundary, 21))
        wal.close()

    def test_compact_never_deletes_the_open_segment(self, wal_dir):
        wal = make_wal(wal_dir)
        for i in range(1, 6):
            wal.append(i, ("delete", f"k{i}"))
        assert wal.compact(1000) == 0
        assert len(list_segments(wal_dir)) == 1
        wal.close()
