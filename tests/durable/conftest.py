"""Fixtures for the durability suite (helpers in durable_utils.py)."""

import shutil
import tempfile

import pytest


@pytest.fixture
def wal_dir():
    directory = tempfile.mkdtemp(prefix="fecam-durable-")
    yield directory
    shutil.rmtree(directory, ignore_errors=True)
