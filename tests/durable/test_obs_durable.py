"""Observability wiring for the durability layer: the
``instrument_durable`` adapter (latency histograms fed through chained
callback taps, collect-time counters mirrored off the WAL and store
tallies), auto-detection through ``instrument()``, and the
``wal_append`` / ``snapshot`` stage spans emitted on the traced write
path."""

from durable_utils import make_durable

from fecam.durable import recover
from fecam.obs import MetricsRegistry, Trace, activated, instrument, \
    instrument_durable


def value_of(registry, name):
    for family in registry.collect():
        if family.name == name:
            (sample,) = family.samples
            return sample.value
    raise AssertionError(f"{name} not collected")


class TestInstrumentDurable:
    def test_histograms_fed_by_append_fsync_and_snapshot(self, wal_dir):
        registry = MetricsRegistry()
        with make_durable(wal_dir, fsync="always") as store:
            instrument_durable(store, registry)
            store.insert("1010XXXX", key="a")
            store.insert("11111111", key="b")
            store.snapshot()
        appends = value_of(registry, "fecam_wal_append_seconds")
        fsyncs = value_of(registry, "fecam_wal_fsync_seconds")
        snaps = value_of(registry, "fecam_snapshot_duration_seconds")
        assert appends.count == 2 and appends.sum > 0.0
        assert fsyncs.count >= 2          # fsync="always": one per append
        assert snaps.count == 1 and snaps.sum > 0.0

    def test_collect_mirrors_wal_and_snapshot_tallies(self, wal_dir):
        registry = MetricsRegistry()
        with make_durable(wal_dir) as store:
            instrument_durable(store, registry)
            for i in range(5):
                store.insert("1010XXXX", key=f"k{i}")
            store.snapshot()
            assert value_of(registry, "fecam_wal_records_total") == 5
            assert value_of(registry, "fecam_wal_bytes_total") == \
                store.wal.appended_bytes > 0
            # two: the baseline snapshot at construction + the explicit one
            assert value_of(registry, "fecam_snapshots_total") == 2
            assert value_of(registry, "fecam_snapshot_generation") == \
                store.generation
            assert value_of(
                registry, "fecam_recovery_replayed_records_total") == 0

    def test_recovered_store_reports_replayed_records(self, wal_dir):
        with make_durable(wal_dir) as store:
            for i in range(4):
                store.insert("1010XXXX", key=f"k{i}")
        registry = MetricsRegistry()
        with recover(wal_dir, fsync="off") as recovered:
            instrument_durable(recovered, registry)
            assert recovered.recovered_records == 4
            assert value_of(
                registry, "fecam_recovery_replayed_records_total") == 4

    def test_taps_chain_and_unregister_restores(self, wal_dir):
        seen = []
        with make_durable(wal_dir) as store:
            store.wal.on_append = \
                lambda seconds, nbytes: seen.append(nbytes)
            prior = store.wal.on_append
            registry = MetricsRegistry()
            unregister = instrument_durable(store, registry)
            store.insert("1010XXXX", key="a")
            # both the histogram and the pre-existing tap were fed
            assert len(seen) == 1
            assert value_of(registry, "fecam_wal_append_seconds").count == 1
            unregister()
            assert store.wal.on_append is prior
            store.insert("11111111", key="b")
            assert len(seen) == 2   # restored tap still live
            assert value_of(registry, "fecam_wal_append_seconds").count == 1

    def test_instrument_autodetects_durable_store(self, wal_dir):
        registry = MetricsRegistry()
        with make_durable(wal_dir) as store:
            unregister = instrument(store, registry)
            store.insert("1010XXXX", key="a")
            # store-level and durable-level series from one call
            assert value_of(registry, "fecam_store_writes_total") == 1
            assert value_of(registry, "fecam_wal_records_total") == 1
            unregister()


class TestDurableTraceStages:
    def test_traced_write_emits_wal_append_span(self, wal_dir):
        trace = Trace(1)
        with make_durable(wal_dir) as store:
            with activated([(trace, trace.root_id)]):
                store.insert("1010XXXX", key="a")
        assert "wal_append" in [span.name for span in trace.spans]

    def test_snapshot_emits_snapshot_span(self, wal_dir):
        trace = Trace(1)
        with make_durable(wal_dir) as store:
            with activated([(trace, trace.root_id)]):
                store.snapshot()
        names = [span.name for span in trace.spans]
        assert "snapshot" in names
        # the baseline snapshot at construction ran untraced
        assert names.count("snapshot") == 1

    def test_untraced_write_emits_nothing(self, wal_dir):
        trace = Trace(1)
        with make_durable(wal_dir) as store:
            store.insert("1010XXXX", key="a")
        assert [span.name for span in trace.spans] == ["request"]
