"""Shared helpers for the durability suite (imported by the
test modules; the ``wal_dir`` fixture lives in ``conftest.py``).

Every test here compares *recovered* stores against a *reference*
replay: a plain volatile :class:`CamStore` that applies the surviving
WAL record prefix through :func:`fecam.durable.apply_op`.  Recovery
goes snapshot + tail; the reference goes pure replay — agreeing
bit-for-bit (entries, placements, energy, latency) proves both the
journal and the snapshot-restore path.

Durability configs here disable compaction so the full journal stays
on disk as the reference input, and use ``fsync="off"`` (the simulated
crash model preserves flushed bytes; real fsync just burns test time).
"""

from fecam.designs import DesignKind
from fecam.functional import EnergyModel
from fecam.durable import (DurabilityConfig, DurableCamStore,
                           WriteAheadLog, apply_op)
from fecam.store import CamStore, StoreConfig

WIDTH = 8
ROWS = 64
KEYSPACE = [f"k{i}" for i in range(24)]
PROBES = ["10101111", "01011111", "00000000", "11111111", "11001100"]


def fast_model():
    return EnergyModel(DesignKind.DG_1T5, WIDTH, e_1step_per_bit=0.8e-15,
                       e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                       latency_2step=2.3e-9, write_energy_per_cell=0.4e-15)


def make_config(banks=4, rows=ROWS):
    # No query cache: bit-identity compares energy/latency, and cache
    # hits legitimately report zero cost.
    return StoreConfig(width=WIDTH, rows=rows, banks=banks,
                       energy_model=fast_model())


def make_durable(directory, config=None, *, crash_point=None,
                 snapshot_every=0, compact=False, fsync="off"):
    return DurableCamStore(
        config or make_config(),
        durability=DurabilityConfig(
            directory=directory, fsync=fsync,
            snapshot_every=snapshot_every,
            compact_on_snapshot=compact),
        crash_point=crash_point)


def random_word(rng):
    return "".join(rng.choice("01X") for _ in range(WIDTH))


def surviving_records(directory):
    """Scan (and repair) the directory's WAL — the crash's survivors."""
    wal = WriteAheadLog(directory, fsync="off")
    records = wal.scan(repair=True)
    wal.close()
    return records


def reference_replay(directory, config):
    """A plain volatile store rebuilt by replaying the whole journal."""
    records = surviving_records(directory)
    ref = CamStore(config)
    for _generation, op in records:
        apply_op(ref, op)
    return ref, records


def entry_tuples(store):
    return [(m.key, m.word, m.priority, m.payload, m.seq, m.bank, m.row)
            for m in store.entries()]


def assert_stores_identical(expected, actual, probes=PROBES):
    """Full bit-identity: generation, placements, and search outcomes."""
    assert actual._generation == expected._generation
    assert entry_tuples(actual) == entry_tuples(expected)
    for lhs, rhs in zip(expected.search_batch(probes),
                        actual.search_batch(probes)):
        assert lhs.match_keys == rhs.match_keys
        assert [(m.bank, m.row) for m in lhs.matches] == \
            [(m.bank, m.row) for m in rhs.matches]
        assert lhs.energy == rhs.energy
        assert lhs.latency == rhs.latency
