"""Fault injection: recovery is bit-identical at *every* crash point.

The property: run a random resolved op sequence against a durable
store, crash it at a drawn site (after a drawn number of hits), then
``recover()`` the directory.  Whatever survived on disk defines the
truth — a plain volatile store replaying the surviving WAL prefix — and
the recovered store must match it bit-for-bit: entries, placements,
search results, energy, latency, write generation.

Crashed stores use ``tempfile.mkdtemp`` per hypothesis example (the
``tmp_path`` fixture is function-scoped and would alias state across
examples).
"""

import random
import shutil
import tempfile

import pytest

from hypothesis import given, settings, strategies as st

from durable_utils import (KEYSPACE, assert_stores_identical, make_config,
                           make_durable, random_word, reference_replay)
from fecam.durable import CRASH_SITES, CrashPoint, recover, reshard_inline
from fecam.errors import DurabilityError, SimulatedCrash


class TestCrashPointMechanics:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown crash site"):
            CrashPoint("wal.append.sideways")

    def test_negative_after_rejected(self):
        with pytest.raises(ValueError):
            CrashPoint("wal.append.after", after=-1)

    def test_fires_exactly_once(self):
        cp = CrashPoint("wal.append.after")
        with pytest.raises(SimulatedCrash):
            cp.fire("wal.append.after")
        assert cp.fired
        cp.fire("wal.append.after")  # a dead process stays dead

    def test_after_budget_skips_hits(self):
        cp = CrashPoint("snapshot.before", after=2)
        cp.fire("snapshot.before")
        cp.fire("snapshot.before")
        with pytest.raises(SimulatedCrash, match="hit 3"):
            cp.fire("snapshot.before")

    def test_other_sites_never_fire(self):
        cp = CrashPoint("wal.append.torn")
        for site in CRASH_SITES:
            if site != cp.site:
                cp.fire(site)
        assert cp.hits == 0 and not cp.fired

    def test_check_then_crash_split(self):
        cp = CrashPoint("wal.append.torn")
        assert cp.check("wal.append.torn")
        with pytest.raises(SimulatedCrash):
            cp.crash("wal.append.torn")


def run_workload(store, rng, n_ops):
    """Random mutations resolved against live state; may crash."""
    for _ in range(n_ops):
        kind = rng.choice(("insert", "insert", "insert", "delete",
                           "update", "bulk", "snapshot"))
        live = {m.key for m in store.entries()}
        if kind == "insert":
            key = rng.choice(KEYSPACE)
            if key in live:
                store.update(key, random_word(rng))
            else:
                store.insert(random_word(rng), key=key,
                             priority=float(rng.randrange(8)))
        elif kind == "delete" and live:
            store.delete(rng.choice(sorted(live)))
        elif kind == "update" and live:
            store.update(rng.choice(sorted(live)), random_word(rng),
                         payload=rng.randrange(100))
        elif kind == "bulk":
            fresh = [k for k in KEYSPACE if k not in live][:3]
            if fresh:
                store.insert_many([random_word(rng) for _ in fresh],
                                  keys=fresh)
        elif kind == "snapshot":
            store.snapshot()


@settings(deadline=None)
@given(seed=st.integers(0, 2**32 - 1),
       site=st.sampled_from(CRASH_SITES),
       after=st.integers(0, 6),
       n_ops=st.integers(4, 24))
def test_recovery_bit_identical_at_every_crash_point(
        seed, site, after, n_ops):
    directory = tempfile.mkdtemp(prefix="fecam-crash-")
    try:
        rng = random.Random(seed)
        cp = CrashPoint(site, after=after)
        config = make_config()
        try:
            # Construction is inside the crash scope: the baseline
            # snapshot itself is a legal crash site.
            store = make_durable(directory, config, crash_point=cp)
            run_workload(store, rng, n_ops)
            if site.startswith("reshard"):
                reshard_inline(store, banks=rng.choice((1, 2, 8)))
            store.snapshot()
        except SimulatedCrash:
            pass
        # No close(): a crashed process never gets to flush-and-exit.
        # The WAL flushes per append, so the disk state is whatever the
        # crash model let through.
        ref, records = reference_replay(directory, config)
        try:
            recovered = recover(directory, fsync="off")
        except DurabilityError:
            # Dying before the very first snapshot completed leaves
            # nothing durable; refusal is only legal when the WAL is
            # empty too.
            assert not records
            return
        assert recovered.recovered_records <= len(records)
        assert_stores_identical(ref, recovered)
        recovered.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 2**32 - 1), after=st.integers(0, 10))
def test_torn_append_loses_at_most_the_last_op(seed, after):
    """The torn-write site drops exactly the op being logged; every
    earlier record survives and recovery serves them all."""
    directory = tempfile.mkdtemp(prefix="fecam-torn-")
    try:
        rng = random.Random(seed)
        cp = CrashPoint("wal.append.torn", after=after)
        store = make_durable(directory, crash_point=cp)
        applied = 0
        try:
            for i in range(12):
                store.insert(random_word(rng), key=f"k{i}")
                applied += 1
        except SimulatedCrash:
            pass
        _ref, records = reference_replay(directory, make_config())
        mutations = [op for _gen, op in records if op[0] != "reshard"]
        # Everything before the torn frame survived.
        assert len(mutations) >= max(0, min(applied, after))
        recovered = recover(directory, fsync="off")
        assert len(recovered.entries()) == len(mutations)
        recovered.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
