"""The slimmed request path keeps the front door's semantics.

``submit`` now short-circuits validation for already-canonical
'0'/'1' queries; everything non-canonical must still take the full
normalization path and raise the same errors.  Served results are
frozen via the lazy snapshot and stay isolated from later writes.
"""

import pytest

from fecam.errors import (OperationError, ServiceOverloaded,
                          TernaryValueError)
from fecam.service import SearchService
from fecam.store import CamStore, StoreConfig
from fecam.store.result import LazyMatches, Query


@pytest.fixture
def store():
    store = CamStore(StoreConfig(width=8, rows=8, banks=2,
                                 fidelity="analytical"))
    store.insert("0101XXXX", key="rule-a")
    store.insert("01011111", key="rule-b")
    return store


def test_canonical_and_noncanonical_queries_agree(store):
    with SearchService(store) as service:
        canonical = service.search("01010000").result
        # An int-sequence query skips the fast path and normalizes.
        as_ints = service.search(Query(bits=[0, 1, 0, 1, 0, 0, 0, 0]))
        assert canonical.match_keys == ["rule-a"]
        assert as_ints.result.match_keys == ["rule-a"]


def test_malformed_queries_still_fail_at_the_front_door(store):
    with SearchService(store) as service:
        with pytest.raises(TernaryValueError):
            service.submit("0101")            # wrong width
        with pytest.raises(TernaryValueError):
            service.submit("0101XXXX")        # wildcards are not queries
        with pytest.raises(TernaryValueError):
            service.submit(Query(bits="0101222"))  # junk symbols
        # The service keeps serving after front-door rejections.
        assert service.search("01010000").result.best.key == "rule-a"


def test_served_results_are_lazy_frozen_snapshots(store):
    with SearchService(store) as service:
        served = service.search("01010000")
        assert isinstance(served.result.matches, LazyMatches)
        service.update("rule-a", "1111XXXX")
        assert served.result.matches[0].word == "0101XXXX"
        # A post-write search observes the new content.
        assert service.search("11110000").result.best.key == "rule-a"


def test_search_many_burst_shares_one_future(store):
    with SearchService(store, max_batch=8) as service:
        served = service.search_many(["01010000"] * 5 + ["11111111"] * 3)
    assert [s.result.best.key if s.result.best else None
            for s in served] == ["rule-a"] * 5 + [None] * 3
    stats = service.stats
    assert stats.submitted == 8
    assert stats.served == 8
    assert stats.latency_samples == 8
    assert all(s.latency >= 0.0 for s in served)


def test_burst_validation_is_all_or_nothing(store):
    with SearchService(store) as service:
        with pytest.raises(TernaryValueError):
            service.search_many(["01010000", "0101"])  # second is junk
        with pytest.raises(TernaryValueError):
            service.submit_many(["01010000", "0101"])
        assert service.stats.submitted == 0  # nothing enqueued


def test_burst_backpressure_is_all_or_nothing(store):
    service = SearchService(store, start=False, max_queue=4)
    with pytest.raises(ServiceOverloaded):
        service.submit_many(["01010000"] * 5)
    assert service.stats.submitted == 0
    assert service.stats.overloads == 1
    # A burst that fits is accepted whole.
    futures = service.submit_many(["01010000"] * 4)
    service.start()
    assert [f.result(5.0).result.best.key for f in futures] == ["rule-a"] * 4
    service.close()


def test_burst_dispatch_error_fails_the_shared_future(store):
    with SearchService(store) as service:
        boom = OperationError("injected backend failure")

        def broken(*args, **kwargs):
            raise boom

        service.store.search_batch = broken
        with pytest.raises(OperationError, match="injected"):
            service.search_many(["01010000", "11111111"])
        assert service.stats.failed == 2


def test_uncached_service_serves_identical_results(store):
    # Twin stores: a service owns its store's consistency, so the two
    # cache modes must not share one backend.
    twin = CamStore(StoreConfig(width=8, rows=8, banks=2,
                                fidelity="analytical"))
    twin.insert("0101XXXX", key="rule-a")
    twin.insert("01011111", key="rule-b")
    with SearchService(store, use_cache=False) as uncached, \
            SearchService(twin, use_cache=True) as cached:
        plain = uncached.search_many(["01010000", "01011111"])
        via_cache = cached.search_many(["01010000", "01011111"])
    assert [s.result.match_keys for s in plain] == \
        [s.result.match_keys for s in via_cache]
    assert all(not s.result.cached for s in plain)


def test_batched_completion_counts_every_request(store):
    with SearchService(store, max_batch=16) as service:
        futures = service.submit_many(["01010000"] * 10 + ["11111111"] * 6)
        results = [f.result(5.0) for f in futures]
    stats = service.stats
    assert stats.submitted == 16
    assert stats.served == 16
    assert stats.failed == 0
    assert stats.latency_samples == 16
    assert [r.result.best.key for r in results[:10]] == ["rule-a"] * 10
    assert all(not r.result.matches for r in results[10:])
