"""Unit tests for the serving tier: RWLock, stats, SearchService
semantics (batching, snapshot tagging, backpressure, shutdown, front
doors), and the router/classifier ``serve()`` ports."""

import asyncio
import threading
import time

import pytest

from fecam.designs import DesignKind
from fecam.errors import (OperationError, ServiceClosed, ServiceError,
                          ServiceOverloaded, TernaryValueError)
from fecam.functional import EnergyModel
from fecam.service import (LatencyReservoir, RWLock, SearchService,
                           ServedResult)
from fecam.store import CamStore, Query, StoreConfig


def fast_model(width):
    return EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=0.8e-15,
                       e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                       latency_2step=2.3e-9, write_energy_per_cell=0.4e-15)


def make_store(width=8, rows=16, **kw):
    kw.setdefault("energy_model", fast_model(width))
    return CamStore(StoreConfig(width=width, rows=rows, **kw))


class TestRWLock:
    def test_concurrent_readers(self):
        lock = RWLock()
        inside = []
        barrier = threading.Barrier(3)

        def reader():
            with lock.read_locked():
                barrier.wait(timeout=5)  # all 3 hold the lock together
                inside.append(1)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(inside) == 3

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        log = []

        def writer(tag):
            with lock.write_locked():
                log.append((tag, "in"))
                time.sleep(0.01)
                log.append((tag, "out"))

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Writers never interleave: every "in" is followed by its "out".
        for i in range(0, len(log), 2):
            assert log[i][0] == log[i + 1][0]
            assert log[i][1] == "in" and log[i + 1][1] == "out"

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        order = []
        reader_started = threading.Event()
        release_reader = threading.Event()

        def long_reader():
            with lock.read_locked():
                reader_started.set()
                release_reader.wait(timeout=5)

        def writer():
            with lock.write_locked():
                order.append("writer")

        def late_reader():
            with lock.read_locked():
                order.append("late-reader")

        t1 = threading.Thread(target=long_reader)
        t1.start()
        reader_started.wait(timeout=5)
        t2 = threading.Thread(target=writer)
        t2.start()
        time.sleep(0.02)  # writer is now waiting on the held read lock
        t3 = threading.Thread(target=late_reader)
        t3.start()
        time.sleep(0.02)
        release_reader.set()
        for t in (t1, t2, t3):
            t.join(timeout=5)
        # Writer preference: the late reader queued behind the writer.
        assert order == ["writer", "late-reader"]

    def test_unbalanced_release_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_write()
        lock.acquire_read()
        lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_read()


class TestLatencyReservoir:
    def test_percentiles_nearest_rank(self):
        sample = [float(i) for i in range(1, 101)]
        assert LatencyReservoir.percentile(sample, 50.0) == 50.0
        assert LatencyReservoir.percentile(sample, 99.0) == 99.0
        assert LatencyReservoir.percentile(sample, 100.0) == 100.0
        assert LatencyReservoir.percentile([], 50.0) == 0.0
        with pytest.raises(ValueError):
            LatencyReservoir.percentile(sample, 101.0)

    def test_percentile_validates_p_before_touching_the_sample(self):
        # An out-of-range p is a caller bug even when the sample is
        # empty — the validation must not hide behind the empty-sample
        # early return (or behind the sort).
        for bad_p in (-0.1, 100.1):
            with pytest.raises(ValueError):
                LatencyReservoir.percentile([], bad_p)
            with pytest.raises(ValueError):
                LatencyReservoir.percentile([1.0], bad_p)

    def test_bounded_window(self):
        reservoir = LatencyReservoir(capacity=4)
        for value in range(10):
            reservoir.record(float(value))
        assert len(reservoir) == 4
        assert reservoir.snapshot() == (6.0, 7.0, 8.0, 9.0)


class TestServiceBasics:
    def test_validation(self):
        store = make_store()
        with pytest.raises(OperationError):
            SearchService(store, max_batch=0)
        with pytest.raises(OperationError):
            SearchService(store, max_queue=0)
        with pytest.raises(OperationError):
            SearchService(store, max_wait=-1.0)

    def test_submit_result_roundtrip_and_generation_tag(self):
        store = make_store()
        store.insert("1010XXXX", key="a")
        with SearchService(store) as service:
            served = service.search("10101111")
            assert isinstance(served, ServedResult)
            assert served.match_keys == ["a"]
            assert served.best.key == "a"
            assert served.generation == store.generation == 1
            assert served.latency > 0.0
            assert served.result.energy > 0.0

    def test_coalescing_is_deterministic_with_delayed_start(self):
        store = make_store()
        store.insert("1111XXXX", key="k")
        service = SearchService(store, start=False, max_batch=16)
        futures = [service.submit("11111111") for _ in range(10)]
        assert service.stats.queue_depth == 10
        service.start()
        results = [f.result(timeout=5) for f in futures]
        assert all(r.match_keys == ["k"] for r in results)
        stats = service.stats
        assert stats.batches == 1
        assert stats.batch_size_hist == {10: 1}
        assert stats.coalesced == 10 and stats.direct == 0
        assert stats.coalesced_ratio == 1.0
        assert stats.mean_batch_size == 10.0
        service.close()

    def test_max_batch_splits_dispatches(self):
        store = make_store()
        store.insert("1111XXXX", key="k")
        service = SearchService(store, start=False, max_batch=4)
        futures = [service.submit("11111111") for _ in range(10)]
        service.close()  # inline drain serves everything
        assert all(f.done() for f in futures)
        assert service.stats.batch_size_hist == {4: 2, 2: 1}

    def test_mask_groups_fuse_correctly(self):
        store = make_store()
        store.insert("11110000", key="a")
        service = SearchService(store, start=False, max_batch=16)
        plain = service.submit("11110011")
        masked = service.submit(Query("11110011", mask="11111100"))
        arg_masked = service.submit("11110011", mask="11111100")
        service.close()
        assert plain.result().match_keys == []
        assert masked.result().match_keys == ["a"]
        assert arg_masked.result().match_keys == ["a"]
        # One drain, two mask groups, one dispatch batch.
        assert service.stats.batches == 1
        assert service.stats.batch_size_hist == {3: 1}

    def test_conflicting_masks_rejected_at_submit(self):
        store = make_store()
        with SearchService(store) as service:
            with pytest.raises(OperationError):
                service.submit(Query("11110000", mask="11111100"),
                               mask="00111111")

    def test_invalid_query_fails_fast_not_the_batch(self):
        store = make_store()
        store.insert("1111XXXX", key="k")
        with SearchService(store) as service:
            with pytest.raises(TernaryValueError):
                service.submit("10Z01111")
            with pytest.raises(TernaryValueError):
                service.submit("101")  # wrong width
            assert service.search("11111111").match_keys == ["k"]

    def test_search_many_preserves_order(self):
        store = make_store()
        store.insert("1010XXXX", key="a")
        store.insert("0101XXXX", key="b")
        with SearchService(store) as service:
            served = service.search_many(["10101111", "01011111",
                                          "00000000"])
            assert [s.match_keys for s in served] == [["a"], ["b"], []]


class TestBackpressureAndShutdown:
    def test_overload_raises_typed_error(self):
        store = make_store()
        service = SearchService(store, start=False, max_queue=2)
        service.submit("11111111")
        service.submit("11111111")
        with pytest.raises(ServiceOverloaded):
            service.submit("11111111")
        assert service.stats.overloads == 1
        assert service.stats.max_queue_depth == 2
        assert isinstance(ServiceOverloaded("x"), ServiceError)
        service.close()

    def test_submit_after_close_raises(self):
        store = make_store()
        service = SearchService(store)
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit("11111111")
        with pytest.raises(ServiceClosed):
            service.write(lambda s: None)
        with pytest.raises(ServiceClosed):
            service.start()

    def test_close_drains_accepted_requests(self):
        store = make_store()
        store.insert("1111XXXX", key="k")
        service = SearchService(store, start=False)
        futures = [service.submit("11111111") for _ in range(5)]
        assert service.close(drain=True) is True  # drain contract held
        assert all(f.result().match_keys == ["k"] for f in futures)
        assert service.stats.served == 5

    def test_close_without_drain_fails_queued_requests(self):
        store = make_store()
        service = SearchService(store, start=False)
        futures = [service.submit("11111111") for _ in range(3)]
        service.close(drain=False)
        for future in futures:
            with pytest.raises(ServiceClosed):
                future.result()
        assert service.stats.failed == 3

    def test_close_is_idempotent(self):
        store = make_store()
        service = SearchService(store)
        service.close()
        service.close()
        assert service.closed

    def test_search_error_fails_only_its_group(self):
        store = make_store()
        store.insert("1111XXXX", key="k")
        service = SearchService(store, start=False, max_batch=16)
        good = service.submit("11111111")
        bad = service.submit("11111111", mask="1111")  # wrong mask width
        service.close()
        assert good.result().match_keys == ["k"]
        with pytest.raises(Exception):
            bad.result()
        assert service.stats.served == 1
        assert service.stats.failed == 1


class TestWritesAndIsolation:
    def test_write_wrappers_advance_generation(self):
        store = make_store()
        with SearchService(store) as service:
            service.insert("1010XXXX", key="a")
            service.insert_many(["0101XXXX"], keys=["b"])
            service.update("a", "1010XX11")
            service.delete("b")
            assert store.generation == 4
            assert service.stats.writes == 4
            assert service.stats.generation == 4

    def test_results_report_the_serving_generation(self):
        store = make_store()
        with SearchService(store) as service:
            service.insert("1111XXXX", key="old")
            first = service.search("11111111")
            service.insert("11111111", key="new")
            second = service.search("11111111")
            assert first.generation == 1
            assert first.match_keys == ["old"]
            assert second.generation == 2
            assert second.match_keys == ["old", "new"]

    def test_write_transaction_is_atomic_for_readers(self):
        store = make_store()
        store.insert("1111XXXX", key="a")
        with SearchService(store) as service:
            def swap(s):
                s.delete("a")
                s.insert("1111XXXX", key="b")

            results = []
            stop = threading.Event()

            def reader():
                while not stop.is_set():
                    results.append(service.search("11111111").match_keys)

            thread = threading.Thread(target=reader)
            thread.start()
            for _ in range(20):
                service.write(swap)
                service.write(lambda s: (s.delete("b"),
                                         s.insert("1111XXXX", key="a")))
            stop.set()
            thread.join(timeout=5)
            # Readers only ever see a complete transaction: exactly one
            # of the two keys, never zero, never both.
            assert results
            assert all(keys in (["a"], ["b"]) for keys in results)


class TestAsyncFrontDoor:
    def test_asearch_and_asearch_many(self):
        store = make_store()
        store.insert("1010XXXX", key="a")
        with SearchService(store) as service:
            async def main():
                one = await service.asearch("10101111")
                many = await service.asearch_many(
                    ["10101111", "00000000"])
                return one, many

            one, many = asyncio.run(main())
            assert one.match_keys == ["a"]
            assert [s.match_keys for s in many] == [["a"], []]
            assert one.generation == store.generation

    def test_async_concurrent_coroutines_coalesce(self):
        store = make_store()
        store.insert("1010XXXX", key="a")
        with SearchService(store, max_wait=5e-3, max_batch=64) as service:
            async def main():
                return await asyncio.gather(
                    *[service.asearch("10101111") for _ in range(16)])

            served = asyncio.run(main())
            assert all(s.match_keys == ["a"] for s in served)
            assert service.stats.coalesced > 0


class TestServiceStatsSnapshot:
    def test_as_dict_round_trip(self):
        store = make_store()
        store.insert("1111XXXX", key="k")
        with SearchService(store) as service:
            service.search_many(["11111111"] * 4)
            payload = service.stats.as_dict()
        assert payload["served"] == 4
        assert payload["submitted"] == 4
        assert payload["batches"] >= 1
        assert 0.0 <= payload["coalesced_ratio"] <= 1.0
        assert payload["p99_latency_s"] >= payload["p50_latency_s"] >= 0.0
        assert payload["latency_samples"] == 4

    def test_snapshot_carries_timestamp_and_uptime(self):
        store = make_store()
        before = time.time()
        with SearchService(store) as service:
            time.sleep(0.01)
            stats = service.stats
        assert before <= stats.timestamp <= time.time()
        assert stats.uptime_s >= 0.01
        payload = stats.as_dict()
        assert payload["timestamp"] == stats.timestamp
        assert payload["uptime_s"] == stats.uptime_s

    def test_batch_size_hist_survives_json(self):
        import json as _json

        from fecam.service import ServiceStats
        store = make_store()
        store.insert("1111XXXX", key="k")
        with SearchService(store) as service:
            service.search_many(["11111111"] * 3)
            stats = service.stats
        assert stats.batch_size_hist  # int keys in the live snapshot
        wire = _json.loads(_json.dumps(stats.as_dict()))
        rebuilt = ServiceStats.from_dict(wire)
        # the int-keyed histogram survives the dump/load cycle exactly
        # (json.dumps would silently stringify a naive int-keyed dict)
        assert rebuilt.batch_size_hist == stats.batch_size_hist
        assert rebuilt.mean_batch_size == pytest.approx(
            stats.mean_batch_size)
        assert rebuilt.timestamp == stats.timestamp
        assert rebuilt.uptime_s == stats.uptime_s

    def test_pending_counts_incomplete_requests(self):
        store = make_store()
        service = SearchService(store, start=False)
        service.submit("11111111")
        assert service.stats.pending == 1
        service.close()
        assert service.stats.pending == 0


class TestAppServing:
    def test_router_serve(self):
        from fecam.apps import TcamRouter

        router = TcamRouter(
            capacity=16,
            store_config=StoreConfig(energy_model=fast_model(32)))
        router.add_route("10.0.0.0/8", "core")
        router.add_route("10.1.0.0/16", "edge")
        with router.serve() as served:
            assert served.lookup("10.1.2.3") == "edge"
            assert served.lookup("10.9.9.9") == "core"
            assert served.lookup("8.8.8.8") is None
            assert served.lookup_batch(["10.1.0.1", "8.8.8.8"]) == \
                ["edge", None]
            assert asyncio.run(served.alookup("10.1.2.3")) == "edge"
            assert served.stats.served == 6  # 3 + batch of 2 + async
        # The service closed with the context.
        with pytest.raises(ServiceClosed):
            served.service.submit("0" * 32)

    def test_router_serve_matches_reference(self):
        from fecam.apps import TcamRouter

        router = TcamRouter(
            capacity=16,
            store_config=StoreConfig(energy_model=fast_model(32)))
        router.add_route("0.0.0.0/0", "default")
        router.add_route("192.168.0.0/16", "lan")
        router.add_route("192.168.7.0/24", "lab")
        addresses = ["192.168.7.9", "192.168.1.1", "4.4.4.4"]
        with router.serve() as served:
            for address in addresses:
                assert served.lookup(address) == \
                    router.lookup_reference(address)

    def test_classifier_serve(self):
        from fecam.apps import Packet, Rule, TcamClassifier

        classifier = TcamClassifier(
            store_config=StoreConfig(energy_model=fast_model(104)))
        classifier.add_rule(Rule(name="ssh", dst_port_range=(22, 22)))
        classifier.add_rule(Rule(name="any"))
        ssh = Packet(src_ip=1, dst_ip=2, src_port=999, dst_port=22,
                     protocol=6)
        web = Packet(src_ip=1, dst_ip=2, src_port=999, dst_port=80,
                     protocol=6)
        with classifier.serve() as served:
            assert served.classify(ssh) == "ssh"
            assert served.classify(web) == "any"
            assert served.classify_batch([ssh, web]) == ["ssh", "any"]
            assert asyncio.run(served.aclassify(ssh)) == "ssh"
            assert served.classify(ssh) == \
                classifier.classify_reference(ssh)

    def test_served_rule_set_is_a_snapshot(self):
        from fecam.apps import Packet, Rule, TcamClassifier

        classifier = TcamClassifier(
            store_config=StoreConfig(energy_model=fast_model(104)))
        classifier.add_rule(Rule(name="any"))
        probe = Packet(src_ip=0, dst_ip=0, src_port=1, dst_port=1,
                       protocol=0)
        with classifier.serve() as served:
            classifier.add_rule(Rule(name="late"))  # not visible yet
            assert served.classify(probe) == "any"
        with classifier.serve() as served:  # rebuild picks it up
            assert served.classify(probe) == "any"
            assert len(served._rules) == 2
