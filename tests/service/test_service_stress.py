"""Concurrency stress tests: N writers + M readers hammer one service.

The headline guarantee — **snapshot isolation** — is proven by serial
replay: every write through the service advances the store's
write-generation by exactly one and is journaled (atomically, inside
the same write transaction), and every served result reports the
generation it was computed at.  After the storm, a fresh store replays
the journal prefix up to each observed generation and re-runs the same
query; the concurrent result must be *bit-identical* (keys, words,
rows, energy, latency) to the serial replay.  A torn read — a search
overlapping a half-applied write — cannot survive this check.

Also covered: the bounded queue holds under flood (typed overloads,
high-water mark never past the bound) and shutdown drains every
accepted request.
"""

import random
import threading
import time

import pytest

from fecam.designs import DesignKind
from fecam.errors import ServiceClosed, ServiceOverloaded
from fecam.functional import EnergyModel
from fecam.service import SearchService
from fecam.store import CamStore, StoreConfig

WIDTH = 12
ROWS = 64
KEYSPACE = [f"k{i}" for i in range(40)]


def fast_model():
    return EnergyModel(DesignKind.DG_1T5, WIDTH, e_1step_per_bit=0.8e-15,
                       e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                       latency_2step=2.3e-9, write_energy_per_cell=0.4e-15)


def make_store(banks=2):
    # No query cache: replay compares energy/latency bit-for-bit, and
    # cache hits legitimately report zero cost.
    return CamStore(StoreConfig(width=WIDTH, rows=ROWS, banks=banks,
                                energy_model=fast_model()))


def random_word(rng):
    return "".join(rng.choice("01X") for _ in range(WIDTH))


def random_query(rng):
    return "".join(rng.choice("01") for _ in range(WIDTH))


def apply_journaled_op(service, journal, base_generation, rng):
    """One random journaled mutation, atomic under the write lock.

    The op is *resolved* against live store state inside the
    transaction (insert-or-update, delete-if-present), and the resolved
    form is journaled in the same critical section — so journal index
    and write-generation advance in lockstep.
    """
    kind = rng.choice(("insert", "insert", "update", "delete", "bulk"))
    key = rng.choice(KEYSPACE)
    word = random_word(rng)

    def txn(store):
        if kind in ("insert", "update"):
            if key in store:
                store.update(key, word)
                journal.append(("update", key, word))
            else:
                store.insert(word, key=key)
                journal.append(("insert", key, word))
        elif kind == "delete":
            if key not in store:
                return  # no mutation, no generation bump, no journal
            store.delete(key)
            journal.append(("delete", key))
        else:
            keys = [k for k in rng.sample(KEYSPACE, 4) if k not in store]
            if not keys:
                return
            words = [random_word(rng) for _ in keys]
            store.insert_many(words, keys=keys)
            journal.append(("insert_many", tuple(keys), tuple(words)))
        assert store.generation == base_generation + len(journal)

    service.write(txn)


def replay(journal_prefix, preload):
    """A fresh store with the preload plus a journal prefix applied."""
    store = make_store()
    store.insert_many([word for _, word in preload],
                      keys=[key for key, _ in preload])
    for op in journal_prefix:
        if op[0] == "insert":
            store.insert(op[2], key=op[1])
        elif op[0] == "update":
            store.update(op[1], op[2])
        elif op[0] == "delete":
            store.delete(op[1])
        else:
            store.insert_many(list(op[2]), keys=list(op[1]))
    return store


def assert_bit_identical(served, replayed):
    lhs, rhs = served.result, replayed
    assert lhs.match_keys == rhs.match_keys
    assert [m.word for m in lhs.matches] == [m.word for m in rhs.matches]
    assert [(m.bank, m.row) for m in lhs.matches] == \
        [(m.bank, m.row) for m in rhs.matches]
    assert lhs.energy == rhs.energy
    assert lhs.latency == rhs.latency


def run_storm(n_writers, n_readers, ops_per_writer, reads_per_reader,
              seed, max_batch=32):
    """Run the storm; returns (journal, preload, observations, stats)."""
    rng = random.Random(seed)
    preload = [(f"seed{i}", random_word(rng)) for i in range(8)]
    store = make_store()
    store.insert_many([word for _, word in preload],
                      keys=[key for key, _ in preload])
    base_generation = store.generation
    journal = []  # append only inside write transactions
    observations = []
    observations_lock = threading.Lock()
    errors = []

    with SearchService(store, max_batch=max_batch,
                       max_queue=4096) as service:
        def writer(widx):
            wrng = random.Random(f"{seed}-w-{widx}")
            try:
                for _ in range(ops_per_writer):
                    apply_journaled_op(service, journal,
                                       base_generation, wrng)
                    # Sub-ms think time: a zero-gap writer loop plus
                    # writer preference would starve every dispatch
                    # until the writers finish (all reads would then
                    # observe one final generation — no interleaving
                    # left to test).
                    time.sleep(wrng.random() * 1e-3)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reader(ridx):
            rrng = random.Random(f"{seed}-r-{ridx}")
            local = []
            try:
                for _ in range(reads_per_reader):
                    bits = random_query(rrng)
                    local.append((bits, service.search(bits)))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            with observations_lock:
                observations.extend(local)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(n_writers)]
        threads += [threading.Thread(target=reader, args=(i,))
                    for i in range(n_readers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = service.stats

    assert not errors, errors
    assert store.generation == base_generation + len(journal)
    return journal, preload, observations, stats, base_generation


def check_snapshot_isolation(journal, preload, observations,
                             base_generation):
    """Serial replay: every result == the store at its generation."""
    by_generation = {}
    for bits, served in observations:
        assert base_generation <= served.generation \
            <= base_generation + len(journal)
        by_generation.setdefault(served.generation, []).append(
            (bits, served))
    # Replay incrementally in generation order; one store walks the
    # journal so the check is O(journal + observations), not O(n^2).
    replayed = replay([], preload)
    applied = 0
    for generation in sorted(by_generation):
        target = generation - base_generation
        while applied < target:
            apply_one(replayed, journal[applied])
            applied += 1
        for bits, served in by_generation[generation]:
            assert_bit_identical(
                served, replayed.search(bits, use_cache=False))


def apply_one(store, op):
    if op[0] == "insert":
        store.insert(op[2], key=op[1])
    elif op[0] == "update":
        store.update(op[1], op[2])
    elif op[0] == "delete":
        store.delete(op[1])
    else:
        store.insert_many(list(op[2]), keys=list(op[1]))


class TestSnapshotIsolation:
    def test_no_torn_reads_under_write_read_storm(self):
        journal, preload, observations, stats, base = run_storm(
            n_writers=2, n_readers=4, ops_per_writer=40,
            reads_per_reader=60, seed=1)
        assert observations and journal
        check_snapshot_isolation(journal, preload, observations, base)
        assert stats.served == len(observations)
        assert stats.writes >= len(journal)  # no-op txns also count

    @pytest.mark.slow
    def test_no_torn_reads_deep_storm(self):
        journal, preload, observations, stats, base = run_storm(
            n_writers=4, n_readers=8, ops_per_writer=120,
            reads_per_reader=150, seed=2, max_batch=64)
        assert len(journal) > 100
        check_snapshot_isolation(journal, preload, observations, base)
        # Under 8 concurrent readers the micro-batcher must coalesce.
        assert stats.coalesced > 0
        assert stats.max_queue_depth >= 2

    def test_readers_span_multiple_generations(self):
        journal, preload, observations, _, base = run_storm(
            n_writers=2, n_readers=4, ops_per_writer=50,
            reads_per_reader=80, seed=3)
        generations = {served.generation for _, served in observations}
        # The storm interleaves enough for readers to observe the table
        # at several distinct snapshots (not one frozen generation).
        assert len(generations) > 1
        check_snapshot_isolation(journal, preload, observations, base)


class TestQueueBounds:
    def test_bounded_queue_holds_under_flood(self):
        store = make_store()
        store.insert("1" * WIDTH, key="k")
        max_queue = 8
        accepted = []
        overloads = [0]
        accepted_lock = threading.Lock()

        with SearchService(store, max_queue=max_queue,
                           max_batch=4) as service:
            def flooder(seed):
                rng = random.Random(seed)
                for _ in range(100):
                    try:
                        future = service.submit(random_query(rng))
                    except ServiceOverloaded:
                        with accepted_lock:
                            overloads[0] += 1
                    else:
                        with accepted_lock:
                            accepted.append(future)

            threads = [threading.Thread(target=flooder, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = [future.result(timeout=10) for future in accepted]
            stats = service.stats

        # The bound held: depth never exceeded the configured queue.
        assert stats.max_queue_depth <= max_queue
        assert stats.overloads == overloads[0]
        # Every accepted request completed with a real result.
        assert len(results) == len(accepted)
        assert stats.served == len(accepted)
        assert all(r.result is not None for r in results)
        assert accepted and overloads[0] > 0  # both regimes exercised


class TestCleanShutdown:
    def test_close_drains_in_flight_requests_under_load(self):
        store = make_store()
        store.insert("1" * WIDTH, key="k")
        service = SearchService(store, max_batch=8, max_queue=4096)
        futures = []
        futures_lock = threading.Lock()
        closed = threading.Event()

        def submitter(seed):
            rng = random.Random(seed)
            while not closed.is_set():
                try:
                    future = service.submit(random_query(rng))
                except (ServiceClosed, ServiceOverloaded):
                    return
                with futures_lock:
                    futures.append(future)

        threads = [threading.Thread(target=submitter, args=(i,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        while len(futures) < 200:  # let real load build up
            pass
        closed.set()
        for thread in threads:
            thread.join()
        service.close(drain=True)
        # Every accepted request was served before shutdown completed.
        assert all(future.done() for future in futures)
        assert all(future.exception() is None for future in futures)
        assert service.stats.served == len(futures)
        with pytest.raises(ServiceClosed):
            service.submit("0" * WIDTH)
