"""Service-suite wiring for the runtime sanitizer.

When the suite runs with ``FECAM_SANITIZE=1`` (CI re-runs the stress
subset this way), every :class:`~fecam.service.SearchService` a test
builds instruments itself at construction.  This autouse fixture makes
that instrumentation *load-bearing*: the violation collector is reset
before each test and asserted empty after it, so any unlocked arena
access or missed generation bump inside the storm scenarios fails the
exact test that provoked it.

Without the env var the fixture is inert and the suite runs exactly as
before.
"""

import pytest

from fecam.analysis import sanitize


@pytest.fixture(autouse=True)
def assert_sanitizer_clean():
    if not sanitize.enabled():
        yield
        return
    sanitize.reset()
    yield
    violations = sanitize.violations()
    sanitize.reset()
    assert not violations, (
        "sanitizer violations during test:\n" + "\n".join(
            f"  [{v.kind}] {v.op} ({v.thread}): {v.message}"
            for v in violations))
