"""Bit-identity of the compiled match kernel against the NumPy kernel.

The compiled backend is only admissible because it is *exactly* the
same function: integer counts equal cell-for-cell, match lists equal
element-for-element (grouped by query, arena rows ascending), and the
C software-pext equal to :func:`fecam.planes.compress_even` bit-for-bit.
These properties are enforced here against both NumPy step-1
strategies, over masked searches, empty banks, and all-wildcard rows.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fecam import kernels
from fecam.fabric.batch import fused_count_matches, pack_queries
from fecam.functional import pack_words
from fecam.planes import TernaryPlanes, compress_even

pytestmark = pytest.mark.skipif(
    not kernels.compiled_available(),
    reason="compiled kernel unavailable (no C compiler)")


def build_planes(rng, rows, width, alphabet, fill=1.0):
    planes = TernaryPlanes(rows=rows, width=width)
    filled = []
    for row in range(rows):
        if rng.random() >= fill:
            continue
        word = "".join(rng.choice(alphabet) for _ in range(width))
        value, care = pack_words([word], width)
        planes.set_row(row, value[0], care[0])
        filled.append(row)
    return planes, filled


def random_queries(rng, n, width):
    return ["".join(rng.choice("01") for _ in range(width))
            for _ in range(n)]


def assert_identical(a, b):
    np.testing.assert_array_equal(a.rows_searched, b.rows_searched)
    np.testing.assert_array_equal(a.step1_eliminated, b.step1_eliminated)
    np.testing.assert_array_equal(a.step2_misses, b.step2_misses)
    np.testing.assert_array_equal(a.full_matches, b.full_matches)
    assert list(a.match_q) == list(b.match_q)
    assert list(a.match_rows) == list(b.match_rows)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_compiled_matches_numpy(data):
    """The headline property: identical counts and identically-ordered
    matches between the compiled kernel and both NumPy strategies."""
    width = data.draw(st.sampled_from([4, 8, 64, 70, 150]), label="width")
    banks = data.draw(st.integers(1, 4), label="banks")
    rows = data.draw(st.integers(1, 24), label="rows_per_bank")
    n_queries = data.draw(st.integers(1, 48), label="n_queries")
    fill = data.draw(st.sampled_from([0.0, 0.4, 1.0]), label="fill")
    rng = random.Random(data.draw(st.integers(0, 2**31), label="seed"))
    # X-heavy so step-1 survivors and full matches actually occur.
    planes, _ = build_planes(rng, banks * rows, width, "01XXX", fill)
    q_values = pack_queries(random_queries(rng, n_queries, width), width)
    compiled = fused_count_matches(planes, q_values, n_banks=banks,
                                   kernel="compiled")
    assert compiled.kernel == "compiled" or compiled.rows_searched.sum() == 0
    for strategy in ("table", "dense"):
        reference = fused_count_matches(planes, q_values, n_banks=banks,
                                        kernel=strategy)
        assert_identical(compiled, reference)


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_compiled_matches_numpy_masked(data):
    """Global-mask searches (the dense-only NumPy path) stay identical;
    the mask changes the derived planes per search, so this also covers
    the compiled kernel's uncached/ad-hoc derived input."""
    width = data.draw(st.sampled_from([8, 64, 70]), label="width")
    banks = data.draw(st.integers(1, 3), label="banks")
    rows = data.draw(st.integers(1, 16), label="rows_per_bank")
    rng = random.Random(data.draw(st.integers(0, 2**31), label="seed"))
    planes, _ = build_planes(rng, banks * rows, width, "01XX")
    q_values = pack_queries(random_queries(rng, 16, width), width)
    mask = "".join(rng.choice("01") for _ in range(width))
    mask_bits, _ = pack_words([mask.replace("0", "X")], width)
    compiled = fused_count_matches(planes, q_values, mask_bits[0],
                                   n_banks=banks, kernel="compiled")
    reference = fused_count_matches(planes, q_values, mask_bits[0],
                                    n_banks=banks, kernel="dense")
    assert_identical(compiled, reference)


def test_empty_banks_and_empty_planes():
    """Zero valid rows (and banks with zero valid rows among occupied
    ones) resolve identically: every count zero, no matches."""
    rng = random.Random(7)
    planes = TernaryPlanes(rows=12, width=8)
    q_values = pack_queries(random_queries(rng, 9, 8), 8)
    empty_c = fused_count_matches(planes, q_values, n_banks=3,
                                  kernel="compiled")
    empty_n = fused_count_matches(planes, q_values, n_banks=3,
                                  kernel="table")
    assert_identical(empty_c, empty_n)
    assert empty_c.full_matches.sum() == 0
    # Occupy only the middle bank: the outer banks stay empty segments.
    for row in (4, 5, 6):
        value, care = pack_words(["0101XXXX"], 8)
        planes.set_row(row, value[0], care[0])
    part_c = fused_count_matches(planes, q_values, n_banks=3,
                                 kernel="compiled")
    for strategy in ("table", "dense"):
        assert_identical(part_c, fused_count_matches(
            planes, q_values, n_banks=3, kernel=strategy))
    assert part_c.rows_searched.tolist() == [0, 3, 0]


def test_all_wildcard_rows_match_everything():
    """All-X rows defeat the step-1 candidate index (every row is a
    candidate of every bucket) and must match every query."""
    width, rows, banks = 16, 8, 2
    planes = TernaryPlanes(rows=rows, width=width)
    value, care = pack_words(["X" * width] * rows, width)
    planes.set_rows(np.arange(rows), value, care)
    rng = random.Random(11)
    q_values = pack_queries(random_queries(rng, 10, width), width)
    compiled = fused_count_matches(planes, q_values, n_banks=banks,
                                   kernel="compiled")
    for strategy in ("table", "dense"):
        assert_identical(compiled, fused_count_matches(
            planes, q_values, n_banks=banks, kernel=strategy))
    assert compiled.full_matches.sum() == rows * 10
    assert len(compiled.match_q) == rows * 10


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=64))
def test_c_pext_equals_compress_even(values):
    """The C software-pext is bit-identical to compress_even for both
    the even and odd (shifted) halves."""
    kernel = kernels.compiled_kernel()
    q = np.array(values, dtype=np.uint64).reshape(-1, 1)
    qe, qo = kernel.compress_queries(q)
    np.testing.assert_array_equal(qe, compress_even(q))
    np.testing.assert_array_equal(qo, compress_even(q >> np.uint64(1)))
