"""Backend registry policy: selection, forcing, and graceful fallback.

The contract under test: ``FECAM_KERNEL=numpy`` never touches the
compiler; ``auto`` silently falls back when the compiled kernel cannot
be provided; ``compiled`` (policy) falls back with a one-time warning;
per-call ``kernel="compiled"`` is strict and raises instead.  Import or
build failures are cached per process and cleared by
:func:`fecam.kernels.reset_backend`.
"""

import warnings

import numpy as np
import pytest

from fecam import kernels
from fecam.errors import KernelUnavailableError, TernaryValueError
from fecam.fabric.batch import fused_count_matches, pack_queries
from fecam.functional import pack_words
from fecam.planes import TernaryPlanes


@pytest.fixture(autouse=True)
def clean_registry():
    kernels.reset_backend()
    yield
    kernels.reset_backend()


@pytest.fixture
def broken_toolchain(monkeypatch):
    """Simulate an import/build failure: every load attempt raises."""

    def boom():
        raise KernelUnavailableError("simulated: no toolchain")

    from fecam.kernels import compiled as compiled_mod
    monkeypatch.setattr(compiled_mod, "load_library", boom)


def small_search(kernel="auto"):
    planes = TernaryPlanes(rows=4, width=8)
    value, care = pack_words(["0101XXXX"], 8)
    planes.set_row(0, value[0], care[0])
    q_values = pack_queries(["01010000", "11111111"], 8)
    return fused_count_matches(planes, q_values, n_banks=2, kernel=kernel)


def test_numpy_policy_never_builds(monkeypatch):
    monkeypatch.setenv("FECAM_KERNEL", "numpy")

    def must_not_build():  # the numpy policy short-circuits before this
        raise AssertionError("FECAM_KERNEL=numpy attempted a build")

    from fecam.kernels import compiled as compiled_mod
    monkeypatch.setattr(compiled_mod, "load_library", must_not_build)
    assert kernels.active_kernel() is None
    assert kernels.backend_name() == "numpy"
    counts = small_search()
    assert counts.kernel in ("table", "dense", "mixed")
    assert counts.full_matches[0, 0] == 1


def test_auto_falls_back_silently(monkeypatch, broken_toolchain):
    monkeypatch.setenv("FECAM_KERNEL", "auto")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert kernels.active_kernel() is None
    counts = small_search()
    assert counts.kernel in ("table", "dense", "mixed")


def test_compiled_policy_warns_once_then_falls_back(monkeypatch,
                                                    broken_toolchain):
    monkeypatch.setenv("FECAM_KERNEL", "compiled")
    with pytest.warns(RuntimeWarning, match="falling back"):
        assert kernels.active_kernel() is None
    # The warning is a one-time latch; later calls stay quiet.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert kernels.active_kernel() is None
        counts = small_search()
    assert counts.kernel in ("table", "dense", "mixed")


def test_per_call_force_is_strict(broken_toolchain):
    with pytest.raises(KernelUnavailableError, match="simulated"):
        small_search(kernel="compiled")
    # The failure is cached: the second attempt raises without retrying
    # the build (broken_toolchain would raise a fresh error otherwise).
    with pytest.raises(KernelUnavailableError, match="simulated"):
        kernels.compiled_kernel()
    assert not kernels.compiled_available()


def test_reset_backend_clears_cached_failure(monkeypatch):
    from fecam.kernels import compiled as compiled_mod

    # Pin the auto policy: an inherited FECAM_KERNEL=numpy would keep
    # backend_name() at "numpy" even after the failure cache clears.
    monkeypatch.delenv("FECAM_KERNEL", raising=False)

    def boom():
        raise KernelUnavailableError("simulated: no toolchain")

    with monkeypatch.context() as patched:
        patched.setattr(compiled_mod, "load_library", boom)
        assert not kernels.compiled_available()
    # Still cached after the patch lifts ...
    assert not kernels.compiled_available()
    kernels.reset_backend()
    # ... and re-resolved from scratch after a reset.
    if kernels.compiled_available():
        assert kernels.backend_name() == "compiled"


def test_set_backend_forces_and_validates(monkeypatch):
    monkeypatch.setenv("FECAM_KERNEL", "auto")
    kernels.set_backend("numpy")
    assert kernels.active_kernel() is None
    assert kernels.backend_name() == "numpy"
    kernels.set_backend(None)  # back to the environment policy
    with pytest.raises(TernaryValueError, match="backend"):
        kernels.set_backend("fortran")


def test_unrecognized_env_warns_and_uses_auto(monkeypatch,
                                              broken_toolchain):
    monkeypatch.setenv("FECAM_KERNEL", "turbo")
    with pytest.warns(RuntimeWarning, match="not recognized"):
        assert kernels.active_kernel() is None  # auto + broken = numpy


@pytest.mark.skipif(not kernels.compiled_available(),
                    reason="compiled kernel unavailable")
def test_auto_resolves_to_compiled_when_buildable(monkeypatch):
    monkeypatch.delenv("FECAM_KERNEL", raising=False)
    kernels.reset_backend()
    assert kernels.backend_name() == "compiled"
    counts = small_search()
    assert counts.kernel == "compiled"
    assert counts.full_matches[0, 0] == 1
    assert counts.step1_eliminated.shape == (2, 2)
    assert counts.rows_searched.dtype == np.int64
