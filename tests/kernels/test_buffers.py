"""The serve path's recycled buffers: thread-local count scratch.

``reuse_buffers=True`` must hand back correct counts while recycling
the same backing storage across calls on one thread, and never share
storage across threads (the fabric read lock admits concurrent
searchers).
"""

import random
import threading

import numpy as np

from fecam.fabric.batch import fused_count_matches, pack_queries
from fecam.functional import pack_words
from fecam.planes import TernaryPlanes


def build(rows=8, width=8, seed=3):
    rng = random.Random(seed)
    planes = TernaryPlanes(rows=rows, width=width)
    words = ["".join(rng.choice("01X") for _ in range(width))
             for _ in range(rows)]
    value, care = pack_words(words, width)
    planes.set_rows(np.arange(rows), value, care)
    queries = ["".join(rng.choice("01") for _ in range(width))
               for _ in range(12)]
    return planes, pack_queries(queries, width)


def test_reused_counts_match_fresh_allocations():
    planes, q_values = build()
    fresh = fused_count_matches(planes, q_values, n_banks=2)
    reused = fused_count_matches(planes, q_values, n_banks=2,
                                 reuse_buffers=True)
    np.testing.assert_array_equal(fresh.step1_eliminated,
                                  reused.step1_eliminated)
    np.testing.assert_array_equal(fresh.step2_misses, reused.step2_misses)
    np.testing.assert_array_equal(fresh.full_matches, reused.full_matches)
    assert list(fresh.match_q) == list(reused.match_q)
    assert list(fresh.match_rows) == list(reused.match_rows)


def test_reused_buffers_share_storage_within_a_thread():
    planes, q_values = build()
    first = fused_count_matches(planes, q_values, n_banks=2,
                                reuse_buffers=True)
    base = first.step1_eliminated.base  # the flat scratch arena
    assert base is not None
    second = fused_count_matches(planes, q_values, n_banks=2,
                                 reuse_buffers=True)
    assert second.step1_eliminated.base is base
    # Fresh-allocation calls never alias the scratch.
    third = fused_count_matches(planes, q_values, n_banks=2)
    assert third.step1_eliminated.base is not base


def test_scratch_grows_for_larger_shapes():
    planes, q_values = build()
    small = fused_count_matches(planes, q_values, n_banks=2,
                                reuse_buffers=True)
    big_planes, big_q = build(rows=16, width=8, seed=5)
    big = fused_count_matches(
        big_planes, np.repeat(big_q, 40, axis=0), n_banks=4,
        reuse_buffers=True)
    assert big.step1_eliminated.shape == (4, 480)
    # Correctness after the regrowth, against fresh buffers.
    ref = fused_count_matches(big_planes, np.repeat(big_q, 40, axis=0),
                              n_banks=4)
    np.testing.assert_array_equal(big.full_matches, ref.full_matches)
    assert small.step1_eliminated.shape == (2, 12)


def test_threads_get_distinct_scratch():
    planes, q_values = build()
    bases = {}

    def worker(name):
        counts = fused_count_matches(planes, q_values, n_banks=2,
                                     reuse_buffers=True)
        bases[name] = counts.step1_eliminated.base

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(3)]
    worker("main")
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    ids = {id(b) for b in bases.values()}
    assert len(ids) == 4  # one scratch arena per thread, none shared
