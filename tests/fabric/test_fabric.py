"""Tests for the multi-bank fabric: lifecycle, priority merge, cache."""

import pytest

from fecam.designs import DesignKind
from fecam.errors import OperationError
from fecam.fabric import HashSharding, RangeSharding, TcamFabric
from fecam.functional import EnergyModel


def fast_model(width):
    return EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=1e-15,
                       e_2step_per_bit=2e-15, latency_1step=1e-9,
                       latency_2step=2e-9, write_energy_per_cell=0.4e-15)


def make(banks=4, rows=8, width=8, **kw):
    return TcamFabric(banks=banks, rows_per_bank=rows, width=width,
                      energy_model=fast_model(width), **kw)


class TestLifecycle:
    def test_insert_search_roundtrip(self):
        fabric = make()
        fabric.insert("1010XXXX", key="a")
        fabric.insert("0101XXXX", key="b")
        assert fabric.search("10101111").match_keys == ["a"]
        assert fabric.search_first("01011111").key == "b"
        assert fabric.search("11111111").matches == []
        assert len(fabric) == 2
        assert "a" in fabric and "zzz" not in fabric

    def test_duplicate_key_rejected(self):
        fabric = make()
        fabric.insert("10101010", key="k")
        with pytest.raises(OperationError):
            fabric.insert("01010101", key="k")

    def test_delete_frees_row_and_stops_matching(self):
        fabric = make()
        entry = fabric.insert("XXXXXXXX", key="wild")
        assert fabric.search("00000000").match_keys == ["wild"]
        fabric.delete("wild")
        assert fabric.search("00000000").matches == []
        assert fabric.banks[entry.bank].occupancy == 0
        with pytest.raises(OperationError):
            fabric.delete("wild")

    def test_update_in_place(self):
        fabric = make()
        entry = fabric.insert("11111111", key="k")
        fabric.update("k", "0000XXXX")
        updated = fabric.entry("k")
        assert (updated.bank, updated.row) == (entry.bank, entry.row)
        assert fabric.search("00001111").match_keys == ["k"]
        assert fabric.search("11111111").matches == []

    def test_insert_many_equivalent_to_loop(self):
        words = ["1010XXXX", "0101XXXX", "XXXXXXXX", "11110000"]
        keys = list("abcd")
        bulk = make()
        loop = make()
        bulk.insert_many(words, keys=keys)
        for key, word in zip(keys, words):
            loop.insert(word, key=key)
        for key in keys:
            eb, el = bulk.entry(key), loop.entry(key)
            assert (eb.bank, eb.row, eb.priority) == \
                (el.bank, el.row, el.priority)
        assert bulk.search("10101111").match_keys == \
            loop.search("10101111").match_keys

    def test_explicit_bank_placement(self):
        fabric = make(banks=3)
        entry = fabric.insert("10101010", key="k", bank=2)
        assert entry.bank == 2
        with pytest.raises(OperationError):
            fabric.insert("10101010", bank=5)

    def test_capacity_overflow_raises(self):
        fabric = make(banks=1, rows=2)
        fabric.insert("10101010")
        fabric.insert("01010101")
        with pytest.raises(OperationError):
            fabric.insert("11111111")


class TestPriorityMerge:
    def test_global_priority_across_banks(self):
        fabric = make(banks=4)
        # All match the query; priorities deliberately out of insertion
        # order and spread across banks.
        fabric.insert("1111XXXX", key="low", priority=30, bank=0)
        fabric.insert("11111111", key="top", priority=1, bank=3)
        fabric.insert("1111XX11", key="mid", priority=7, bank=1)
        result = fabric.search("11111111")
        assert result.match_keys == ["top", "mid", "low"]
        assert fabric.search_first("11111111").key == "top"

    def test_insertion_order_breaks_priority_ties(self):
        fabric = make(banks=2)
        fabric.insert("XXXXXXXX", key="first", priority=5, bank=1)
        fabric.insert("XXXXXXXX", key="second", priority=5, bank=0)
        assert fabric.search("00000000").match_keys == ["first", "second"]

    def test_energy_sums_and_latency_is_worst_bank(self):
        fabric = make(banks=3)
        for bank in range(3):
            fabric.insert("XXXXXXXX", bank=bank)
        result = fabric.search("00000000")
        assert result.per_bank is not None
        assert result.energy == pytest.approx(
            sum(s.energy for s in result.per_bank))
        assert result.latency == max(s.latency for s in result.per_bank)


class TestSharding:
    def test_hash_sharding_spreads_entries(self):
        fabric = make(banks=4, rows=64)
        for i in range(64):
            fabric.insert(format(i, "08b"), key=i)
        occupied = [bank.occupancy for bank in fabric.banks]
        assert sum(occupied) == 64
        assert all(o > 0 for o in occupied)

    def test_range_sharding_places_contiguously(self):
        fabric = make(banks=4, rows=64,
                      sharding=RangeSharding(4, key_bits=8))
        low = fabric.insert(format(3, "08b"), key=3)
        high = fabric.insert(format(250, "08b"), key=250)
        assert low.bank == 0
        assert high.bank == 3

    def test_policy_bank_count_must_match(self):
        with pytest.raises(OperationError):
            make(banks=4, sharding=HashSharding(2))


class TestQueryCache:
    def test_repeat_query_is_cached_and_free(self):
        fabric = make(cache_size=8)
        fabric.insert("1010XXXX", key="a")
        first = fabric.search("10101111")
        energy_after_first = fabric.stats.energy_total
        second = fabric.search("10101111")
        assert not first.cached and second.cached
        assert second.match_keys == first.match_keys
        assert second.energy == 0.0  # no array fired for a hit
        assert second.latency == 0.0
        assert fabric.stats.energy_total == energy_after_first  # no new J
        assert fabric.stats.cache_hits == 1

    def test_write_invalidates(self):
        fabric = make(cache_size=8)
        fabric.insert("1010XXXX", key="a")
        fabric.search("10101111")
        fabric.insert("10101111", key="b")  # write to some bank
        result = fabric.search("10101111")
        assert not result.cached
        assert set(result.match_keys) == {"a", "b"}

    def test_batch_uses_cache_for_duplicates(self):
        fabric = make(cache_size=8)
        fabric.insert("1010XXXX", key="a")
        results = fabric.search_batch(["10101111"] * 5 + ["00000000"])
        assert [r.cached for r in results] == \
            [False, True, True, True, True, False]
        assert all(r.match_keys == ["a"] for r in results[:5])
        assert fabric.stats.cache_hits == 4

    def test_use_cache_false_bypasses(self):
        fabric = make(cache_size=8)
        fabric.insert("1010XXXX")
        fabric.search("10101111")
        result = fabric.search("10101111", use_cache=False)
        assert not result.cached

    def test_mask_is_part_of_cache_key(self):
        fabric = make(cache_size=8)
        fabric.insert("11110000", key="a")
        miss = fabric.search("11110011")
        hit = fabric.search("11110011", mask="11111100")
        assert miss.matches == [] and hit.match_keys == ["a"]
        assert not hit.cached


class TestStats:
    def test_snapshot_counts(self):
        fabric = make(banks=2)
        fabric.insert("XXXXXXXX", bank=0)
        fabric.search("00000000")
        fabric.search_batch(["11111111", "00001111"], use_cache=False)
        stats = fabric.stats
        assert stats.searches == 3
        assert stats.array_searches == 3
        assert stats.occupancy == 1
        assert stats.num_banks == 2
        assert len(stats.per_bank) == 2
        assert stats.energy_total > 0
        assert stats.worst_latency > 0
        assert stats.per_bank[0].searches == 3

    def test_step1_rate_accumulates(self):
        fabric = make(banks=1)
        fabric.insert("00000000")  # query 1000... misses at even pos 0
        fabric.search("10000000")
        telemetry = fabric.stats.per_bank[0]
        assert telemetry.rows_examined == 1
        assert telemetry.step1_eliminated == 1
        assert telemetry.step1_miss_rate == 1.0
