"""Derived-plane cache coherence under interleaved mutation.

The arena memoizes compressed step planes and the step-1 candidate
index, keyed by a write-generation counter.  These properties pin the
contract down: interleaving ``write``/``write_many``/``erase``/
``update`` with scalar and batched searches never serves stale planes —
every result stays bit-identical to a cache-free recompute — and the
generation counter invalidates exactly when stored content changes.
"""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from fecam.cam import ternary_match
from fecam.designs import DesignKind
from fecam.fabric import TcamFabric, fused_count_matches
from fecam.fabric.batch import pack_queries
from fecam.functional import EnergyModel

WIDTH = 8


def fast_model():
    return EnergyModel(DesignKind.DG_1T5, WIDTH, e_1step_per_bit=1e-15,
                       e_2step_per_bit=2e-15, latency_1step=1e-9,
                       latency_2step=2e-9, write_energy_per_cell=0.4e-15)


def arena_snapshot(fabric):
    arena = fabric.arena
    return (arena.value.tobytes(), arena.care.tobytes(),
            arena.valid.tobytes())


def assert_counts_equal(lhs, rhs):
    assert (lhs.rows_searched == rhs.rows_searched).all()
    assert (lhs.step1_eliminated == rhs.step1_eliminated).all()
    assert (lhs.step2_misses == rhs.step2_misses).all()
    assert (lhs.full_matches == rhs.full_matches).all()
    assert lhs.match_q == rhs.match_q
    assert lhs.match_rows == rhs.match_rows


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_interleaved_mutation_never_serves_stale_planes(data):
    """write / write_many / erase / update interleaved with scalar and
    batched searches: warm-cache results == cache-free recompute ==
    pure-Python reference matches, for both step-1 kernels."""
    rng = random.Random(data.draw(st.integers(0, 2**31), label="seed"))
    banks = data.draw(st.integers(1, 3), label="banks")
    rows = 8
    fabric = TcamFabric(banks=banks, rows_per_bank=rows, width=WIDTH,
                        energy_model=fast_model())
    shadow = {}  # key -> stored canonical word
    next_key = [0]

    def random_word():
        return "".join(rng.choice("01XXX") for _ in range(WIDTH))

    def op_insert():
        if fabric.occupancy >= fabric.capacity:
            return
        key = next_key[0]
        next_key[0] += 1
        word = random_word()
        free = [b for b in range(banks)
                if fabric.banks[b].free_count > 0]
        fabric.insert(word, key=key, priority=key, bank=rng.choice(free))
        shadow[key] = word

    def op_insert_many():
        free = [b for b in range(banks)
                for _ in range(fabric.banks[b].free_count)]
        n = rng.randrange(0, min(len(free), 4) + 1)
        if n == 0:
            return
        placement = rng.sample(free, n)
        words = [random_word() for _ in range(n)]
        keys = list(range(next_key[0], next_key[0] + n))
        next_key[0] += n
        fabric.insert_many(words, keys=keys, priorities=keys,
                           banks=placement)
        shadow.update(zip(keys, words))

    def op_delete():
        if shadow:
            key = rng.choice(sorted(shadow))
            fabric.delete(key)
            del shadow[key]

    def op_update():
        if shadow:
            key = rng.choice(sorted(shadow))
            word = random_word()
            fabric.update(key, word)
            shadow[key] = word

    def check_searches():
        queries = ["".join(rng.choice("01") for _ in range(WIDTH))
                   for _ in range(rng.randrange(1, 6))]
        # Scalar broadcast search against the pure-Python semantics.
        for query in queries:
            result = fabric.search(query, use_cache=False)
            expected = {key for key, word in shadow.items()
                        if ternary_match(word, query)}
            assert {e.key for e in result.matches} == expected
        # Batched kernels: warm caches vs cache-free recompute, both
        # step-1 strategies, bit-identical counts and matches.
        q_matrix = pack_queries(queries, WIDTH)
        reference = fused_count_matches(
            fabric.arena, q_matrix, n_banks=banks, rows_per_bank=rows,
            kernel="dense", reuse_cache=False)
        for kernel in ("auto", "dense", "table"):
            warm = fused_count_matches(
                fabric.arena, q_matrix, n_banks=banks, rows_per_bank=rows,
                kernel=kernel)
            assert_counts_equal(warm, reference)
        # The fabric's own batched front door agrees with the loop.
        batched = fabric.search_batch(queries, use_cache=False)
        for query, result in zip(queries, batched):
            expected = {key for key, word in shadow.items()
                        if ternary_match(word, query)}
            assert {e.key for e in result.matches} == expected

    mutations = [op_insert, op_insert_many, op_delete, op_update]
    for _ in range(data.draw(st.integers(2, 8), label="steps")):
        before = arena_snapshot(fabric)
        gen_before = fabric.arena.generation
        op = data.draw(st.integers(0, len(mutations) - 1), label="op")
        mutations[op]()
        changed = arena_snapshot(fabric) != before
        # Generation advances exactly when stored content changes.
        assert (fabric.arena.generation != gen_before) == changed
        check_searches()


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_identical_rewrite_keeps_caches_warm_and_correct(data):
    """An update that stores the word already present must not
    invalidate (same content, same caches) yet must stay correct."""
    rng = random.Random(data.draw(st.integers(0, 2**31), label="seed"))
    fabric = TcamFabric(banks=2, rows_per_bank=4, width=WIDTH,
                        energy_model=fast_model())
    words = ["".join(rng.choice("01X") for _ in range(WIDTH))
             for _ in range(5)]
    fabric.insert_many(words, keys=list(range(5)),
                       priorities=list(range(5)),
                       banks=[i % 2 for i in range(5)])
    queries = ["".join(rng.choice("01") for _ in range(WIDTH))
               for _ in range(8)]
    fabric.search_batch(queries, use_cache=False)  # warm derived planes
    derived_before = fabric.arena.derived()
    gen_before = fabric.arena.generation
    fabric.update(2, words[2])  # rewrite the identical word
    assert fabric.arena.generation == gen_before
    assert fabric.arena.derived() is derived_before  # no recompress
    for query, result in zip(queries,
                             fabric.search_batch(queries, use_cache=False)):
        expected = {i for i, word in enumerate(words)
                    if ternary_match(word, query)}
        assert {e.key for e in result.matches} == expected
    # A real change invalidates and the next batch sees it.
    fabric.update(2, "1" * WIDTH)
    assert fabric.arena.generation > gen_before
    hits = fabric.search_batch(["1" * WIDTH], use_cache=False)[0]
    assert 2 in {e.key for e in hits.matches}
