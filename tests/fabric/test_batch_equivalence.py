"""Property tests: the vectorized batch path is bit-identical to a loop
of per-bank sequential ``search()`` calls, and fabric match ordering is
the global priority order across shards."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fecam.designs import DesignKind
from fecam.fabric import TcamFabric
from fecam.fabric.batch import (batch_count_matches, fused_count_matches,
                                normalize_queries, pack_queries,
                                search_packed_batch)
from fecam.functional import EnergyModel, TernaryCAM, pack_words


def fast_model(width):
    return EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=1e-15,
                       e_2step_per_bit=2e-15, latency_1step=1e-9,
                       latency_2step=2e-9, write_energy_per_cell=0.4e-15)


def build_pair(banks, rows, width, words, bank_map):
    """Two identical fabrics: one for the loop, one for the batch."""
    pair = []
    for _ in range(2):
        fabric = TcamFabric(banks=banks, rows_per_bank=rows, width=width,
                            energy_model=fast_model(width))
        fabric.insert_many(words, keys=list(range(len(words))),
                           banks=bank_map)
        pair.append(fabric)
    return pair


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_search_batch_equals_sequential_loop(data):
    """The headline property: identical matches, energy, latency, and
    per-cam counters between search_batch and the per-bank loop —
    including widths that span multiple uint64 chunks."""
    width = data.draw(st.sampled_from([6, 8, 64, 70]), label="width")
    banks = data.draw(st.integers(1, 4), label="banks")
    rows = data.draw(st.integers(1, 12), label="rows_per_bank")
    n_words = data.draw(st.integers(0, banks * rows), label="n_words")
    n_queries = data.draw(st.integers(1, 40), label="n_queries")
    rng = random.Random(data.draw(st.integers(0, 2**31), label="seed"))
    # X-heavy alphabet so step-1 survivors and matches actually happen.
    words = ["".join(rng.choice("01XXX") for _ in range(width))
             for _ in range(n_words)]
    # Random placement that respects per-bank capacity.
    free = {b: rows for b in range(banks)}
    bank_map = []
    for _ in range(n_words):
        bank = rng.choice([b for b, n_free in free.items() if n_free > 0])
        free[bank] -= 1
        bank_map.append(bank)
    queries = ["".join(rng.choice("01") for _ in range(width))
               for _ in range(n_queries)]

    looped, batched = build_pair(banks, rows, width, words, bank_map)
    seq = [looped.search(q, use_cache=False) for q in queries]
    bat = batched.search_batch(queries, use_cache=False)

    assert [r.match_keys for r in seq] == [r.match_keys for r in bat]
    assert [r.energy for r in seq] == [r.energy for r in bat]  # exact
    assert [r.latency for r in seq] == [r.latency for r in bat]
    for bank_seq, bank_bat in zip(looped.banks, batched.banks):
        assert bank_seq.cam.energy_spent == bank_bat.cam.energy_spent
        assert bank_seq.cam.search_count == bank_bat.cam.search_count
    assert looped.stats.energy_total == batched.stats.energy_total
    seq_pb = [t.__dict__ for t in looped.stats.per_bank]
    bat_pb = [t.__dict__ for t in batched.stats.per_bank]
    assert seq_pb == bat_pb


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_search_packed_batch_equals_scalar_loop(data):
    """Bank-level kernel: SearchStats streams are field-for-field equal."""
    width = data.draw(st.sampled_from([8, 64, 100]), label="width")
    rows = data.draw(st.integers(1, 24), label="rows")
    rng = random.Random(data.draw(st.integers(0, 2**31), label="seed"))
    n_words = rng.randrange(0, rows + 1)
    queries = ["".join(rng.choice("01") for _ in range(width))
               for _ in range(rng.randrange(1, 30))]

    cam_a = TernaryCAM(rows=rows, width=width,
                       energy_model=fast_model(width))
    cam_b = TernaryCAM(rows=rows, width=width,
                       energy_model=fast_model(width))
    for row in range(n_words):
        word = "".join(rng.choice("01XX") for _ in range(width))
        cam_a.write(row, word)
        cam_b.write(row, word)

    packed = pack_queries(queries, width)
    scalar = [cam_a.search(q) for q in queries]
    batch = search_packed_batch(cam_b, packed)
    assert [s.__dict__ for s in scalar] == [s.__dict__ for s in batch]
    assert cam_a.energy_spent == cam_b.energy_spent


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_batch_with_mask_equals_masked_loop(data):
    """The global masking register behaves identically in both paths."""
    width = 8
    rng = random.Random(data.draw(st.integers(0, 2**31), label="seed"))
    words = ["".join(rng.choice("01X") for _ in range(width))
             for _ in range(10)]
    queries = ["".join(rng.choice("01") for _ in range(width))
               for _ in range(12)]
    mask = "".join(rng.choice("01") for _ in range(width))
    looped, batched = build_pair(2, 8, width, words,
                                 [i % 2 for i in range(len(words))])
    seq = [looped.search(q, mask, use_cache=False) for q in queries]
    bat = batched.search_batch(queries, mask, use_cache=False)
    assert [r.match_keys for r in seq] == [r.match_keys for r in bat]
    assert [r.energy for r in seq] == [r.energy for r in bat]


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_fabric_priority_order_across_shards(data):
    """Matches come back in global priority order regardless of shard."""
    rng = random.Random(data.draw(st.integers(0, 2**31), label="seed"))
    banks = data.draw(st.integers(1, 4), label="banks")
    fabric = TcamFabric(banks=banks, rows_per_bank=16, width=8,
                        energy_model=fast_model(8))
    n = rng.randrange(1, min(24, banks * 16 + 1))
    priorities = [rng.randrange(100) for _ in range(n)]
    free = {b: 16 for b in range(banks)}
    for i, prio in enumerate(priorities):
        # X-heavy words so several entries match at once.
        word = "".join(rng.choice("01XXXX") for _ in range(8))
        bank = rng.choice([b for b, n_free in free.items() if n_free > 0])
        free[bank] -= 1
        fabric.insert(word, key=i, priority=prio, bank=bank)
    query = "".join(rng.choice("01") for _ in range(8))
    for result in (fabric.search(query, use_cache=False),
                   fabric.search_batch([query], use_cache=False)[0]):
        got = [(e.priority, e.seq) for e in result.matches]
        assert got == sorted(got)
        # And the matches are exactly the entries whose word matches.
        from fecam.cam import ternary_match
        expected = {i for i in range(n)
                    if ternary_match(fabric.entry(i).word, query)}
        assert {e.key for e in result.matches} == expected


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_fused_arena_kernel_equals_per_bank_kernels(data):
    """The tentpole property: one fused pass over the fabric's arena
    produces exactly the per-(bank, query) counts and (bank-attributed)
    matches that a Python loop of per-bank kernels produces — for every
    step-1 strategy, with and without a masking register."""
    width = data.draw(st.sampled_from([6, 8, 64, 70]), label="width")
    banks = data.draw(st.integers(1, 4), label="banks")
    rows = data.draw(st.integers(1, 12), label="rows_per_bank")
    rng = random.Random(data.draw(st.integers(0, 2**31), label="seed"))
    n_words = rng.randrange(0, banks * rows + 1)
    words = ["".join(rng.choice("01XXX") for _ in range(width))
             for _ in range(n_words)]
    free = {b: rows for b in range(banks)}
    bank_map = []
    for _ in range(n_words):
        bank = rng.choice([b for b, n_free in free.items() if n_free > 0])
        free[bank] -= 1
        bank_map.append(bank)
    fabric = TcamFabric(banks=banks, rows_per_bank=rows, width=width,
                        energy_model=fast_model(width))
    if words:
        fabric.insert_many(words, keys=list(range(n_words)),
                           banks=bank_map)
    queries = ["".join(rng.choice("01") for _ in range(width))
               for _ in range(rng.randrange(1, 30))]
    q_matrix = pack_queries(queries, width)
    mask_bits = None
    if data.draw(st.booleans(), label="masked"):
        mask = "".join(rng.choice("01") for _ in range(width))
        mask_bits = fabric.banks[0].cam.pack_mask(mask)

    per_bank = [batch_count_matches(bank.cam, q_matrix, mask_bits,
                                    kernel="dense", reuse_cache=False)
                for bank in fabric.banks]
    for kernel in ("auto", "dense", "table"):
        fused = fused_count_matches(fabric.arena, q_matrix, mask_bits,
                                    n_banks=banks, rows_per_bank=rows,
                                    kernel=kernel)
        for b, counts in enumerate(per_bank):
            assert int(fused.rows_searched[b]) == counts.rows_searched
            assert (fused.step1_eliminated[b]
                    == counts.step1_eliminated).all()
            assert (fused.step2_misses[b] == counts.step2_misses).all()
            assert (fused.full_matches[b] == counts.full_matches).all()
        loop_pairs = sorted((q, b * rows + r) for b, counts in
                            enumerate(per_bank)
                            for q, r in zip(counts.match_q,
                                            counts.match_rows))
        fused_pairs = list(zip(fused.match_q, fused.match_rows))
        assert fused_pairs == sorted(fused_pairs)  # query-grouped, rows
        assert sorted(fused_pairs) == loop_pairs   # ascending, complete


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_table_and_dense_kernels_are_bit_identical(data):
    """The candidate-index strategy is an optimization, never a
    semantic: identical counts and identically-ordered matches."""
    width = data.draw(st.sampled_from([8, 64, 100]), label="width")
    rows = data.draw(st.integers(1, 24), label="rows")
    rng = random.Random(data.draw(st.integers(0, 2**31), label="seed"))
    cam = TernaryCAM(rows=rows, width=width,
                     energy_model=fast_model(width))
    for row in range(rng.randrange(0, rows + 1)):
        cam.write(row, "".join(rng.choice("01XX") for _ in range(width)))
    queries = ["".join(rng.choice("01") for _ in range(width))
               for _ in range(rng.randrange(1, 30))]
    packed = pack_queries(queries, width)
    table = batch_count_matches(cam, packed, kernel="table")
    dense = batch_count_matches(cam, packed, kernel="dense")
    assert (table.step1_eliminated == dense.step1_eliminated).all()
    assert (table.step2_misses == dense.step2_misses).all()
    assert (table.full_matches == dense.full_matches).all()
    assert table.match_q == dense.match_q
    assert table.match_rows == dense.match_rows


class TestBatchHelpers:
    def test_pack_words_matches_scalar_packer(self):
        rng = random.Random(5)
        for width in (1, 7, 64, 65, 128, 150):
            words = ["".join(rng.choice("01X") for _ in range(width))
                     for _ in range(9)]
            cam = TernaryCAM(rows=len(words), width=width,
                             energy_model=fast_model(width))
            value, care = pack_words(words, width)
            for row, word in enumerate(words):
                cam.write(row, word)
                assert (cam._value[row] == value[row]).all()
                assert (cam._care[row] == care[row]).all()

    def test_normalize_queries_fast_and_slow_paths(self):
        assert normalize_queries(["0101", "1111"], 4) == ["0101", "1111"]
        # Alias symbols route through the scalar normalizer.
        assert normalize_queries([[1, 0, 1, 1]], 4) == ["1011"]
        with pytest.raises(Exception):
            normalize_queries(["01X1"], 4)  # X invalid in a query
        with pytest.raises(Exception):
            normalize_queries(["01"], 4)  # wrong width

    def test_batch_count_matches_empty_cases(self):
        cam = TernaryCAM(rows=4, width=8, energy_model=fast_model(8))
        counts = batch_count_matches(cam, pack_queries(["00000000"], 8))
        assert counts.rows_searched == 0
        assert counts.match_q == []
        empty = batch_count_matches(cam, np.zeros((0, 1), dtype=np.uint64))
        assert empty.step1_eliminated.shape == (0,)
