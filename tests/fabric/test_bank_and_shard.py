"""Tests for the bank row allocator and the sharding policies."""

import pytest

from fecam.designs import DesignKind
from fecam.errors import OperationError, TernaryValueError
from fecam.fabric import CamBank, HashSharding, RangeSharding
from fecam.functional import EnergyModel


def fast_model(width):
    return EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=1e-15,
                       e_2step_per_bit=2e-15, latency_1step=1e-9,
                       latency_2step=2e-9, write_energy_per_cell=0.4e-15)


def make_bank(rows=4, width=8):
    return CamBank(bank_id=0, rows=rows, width=width,
                   energy_model=fast_model(width))


class TestCamBank:
    def test_insert_allocates_lowest_row(self):
        bank = make_bank()
        assert bank.insert("1010XXXX") == 0
        assert bank.insert("0101XXXX") == 1
        assert bank.occupancy == 2
        assert bank.free_count == 2

    def test_delete_recycles_row(self):
        bank = make_bank()
        bank.insert("10101010")
        bank.insert("01010101")
        bank.delete(0)
        assert bank.cam.stored_word(0) is None
        assert bank.insert("11111111") == 0  # lowest free row reused

    def test_full_bank_rejects_insert(self):
        bank = make_bank(rows=2)
        bank.insert("10101010")
        bank.insert("01010101")
        assert bank.is_full
        with pytest.raises(OperationError):
            bank.insert("11111111")

    def test_failed_write_releases_row(self):
        bank = make_bank()
        with pytest.raises(TernaryValueError):
            bank.insert("101")  # wrong width
        assert bank.free_count == 4
        assert bank.insert("10101010") == 0

    def test_insert_many_matches_sequential(self):
        words = ["10101010", "0101XXXX", "XXXXXXXX"]
        bulk = make_bank()
        seq = make_bank()
        rows_bulk = bulk.insert_many(words)
        rows_seq = [seq.insert(w) for w in words]
        assert rows_bulk == rows_seq
        for row in rows_bulk:
            assert bulk.cam.stored_word(row) == seq.cam.stored_word(row)
        assert bulk.cam.energy_spent == seq.cam.energy_spent
        assert bulk.cam.write_count == seq.cam.write_count

    def test_insert_many_over_capacity(self):
        bank = make_bank(rows=2)
        with pytest.raises(OperationError):
            bank.insert_many(["10101010"] * 3)
        assert bank.free_count == 2  # nothing leaked

    def test_update_requires_occupied_row(self):
        bank = make_bank()
        with pytest.raises(OperationError):
            bank.update(0, "10101010")
        row = bank.insert("10101010")
        bank.update(row, "0000XXXX")
        assert bank.cam.stored_word(row) == "0000XXXX"

    def test_delete_validation(self):
        bank = make_bank()
        with pytest.raises(OperationError):
            bank.delete(0)  # not occupied
        with pytest.raises(OperationError):
            bank.delete(99)


class TestHashSharding:
    def test_stable_and_in_range(self):
        policy = HashSharding(8)
        placements = {key: policy.bank_for(key)
                      for key in ["a", "b", ("net", 24), 17]}
        for key, bank in placements.items():
            assert 0 <= bank < 8
            assert policy.bank_for(key) == bank  # deterministic

    def test_spreads_keys(self):
        policy = HashSharding(8)
        banks = {policy.bank_for(i) for i in range(256)}
        assert len(banks) == 8  # every bank gets traffic

    def test_rejects_zero_banks(self):
        with pytest.raises(OperationError):
            HashSharding(0)


class TestRangeSharding:
    def test_contiguous_slices(self):
        policy = RangeSharding(4, key_bits=8)
        assert policy.bank_for(0) == 0
        assert policy.bank_for(63) == 0
        assert policy.bank_for(64) == 1
        assert policy.bank_for(255) == 3

    def test_binary_string_keys(self):
        policy = RangeSharding(2, key_bits=8)
        assert policy.bank_for("00000000") == 0
        assert policy.bank_for("11111111") == 1

    def test_monotone_over_key_space(self):
        policy = RangeSharding(3, key_bits=6)
        banks = [policy.bank_for(v) for v in range(64)]
        assert banks == sorted(banks)
        assert set(banks) == {0, 1, 2}

    def test_validation(self):
        policy = RangeSharding(2, key_bits=4)
        with pytest.raises(OperationError):
            policy.bank_for(16)  # outside key space
        with pytest.raises(OperationError):
            policy.bank_for("banana")
        with pytest.raises(OperationError):
            RangeSharding(2, key_bits=0)
