"""Golden-fixture suite for the lint rules (FCA001-FCA006).

Each rule gets at least one *bad* fixture (must be flagged with the
right code on the right line) and one *good* fixture (must lint clean),
so a rule regression — stops firing, or starts over-firing — breaks a
named test here rather than silently in CI.

Fixture sources carry a ``# BAD`` marker comment on each line a
violation is expected; ``expect_lines`` resolves them so the tests
assert exact line numbers without brittle hand-counted constants.
"""

from pathlib import Path

import pytest

from fecam.analysis.linter import run_lint


def lint_source(tmp_path: Path, source: str, *, select=None,
                name: str = "fixture.py"):
    path = tmp_path / name
    path.write_text(source)
    return run_lint([path], select=select, root=tmp_path)


def expect_lines(source: str, marker: str = "# BAD"):
    return [i for i, line in enumerate(source.splitlines(), start=1)
            if marker in line]


def codes_and_lines(result):
    return [(v.code, v.line) for v in result.violations]


# -- FCA001: generation discipline ---------------------------------------------

FCA001_BAD = """\
class Engine:
    def rewrite(self, planes, row, value):
        planes.value[row] = value  # BAD
        planes.care[row] = 0  # BAD
"""

FCA001_GOOD = """\
class Engine:
    def rewrite(self, planes, row, value):
        planes.value[row] = value
        planes.care[row] = 0
        planes._bump()

    def rewrite_via_mutator(self, planes, row, value, care):
        planes.set_row(row, value, care)

    def local_buffers(self, value, row):
        scratch = {}
        scratch["value"] = 1
        value[row] = 3  # plain array named value: not a planes buffer
"""

FCA001_SELF = """\
class TernaryPlanes:
    def __init__(self, rows):
        self.value = [0] * rows

    def _bump(self):
        pass

    def poke(self, row):
        self.value[row] = 1  # BAD

    def poke_bumped(self, row):
        self.value[row] = 1
        self._bump()
"""


class TestGenerationDiscipline:
    def test_bad_flagged_with_code_and_line(self, tmp_path):
        result = lint_source(tmp_path, FCA001_BAD)
        assert codes_and_lines(result) == [
            ("FCA001", line) for line in expect_lines(FCA001_BAD)]

    def test_good_clean(self, tmp_path):
        assert lint_source(tmp_path, FCA001_GOOD).ok

    def test_planes_class_self_writes(self, tmp_path):
        result = lint_source(tmp_path, FCA001_SELF)
        assert codes_and_lines(result) == [
            ("FCA001", line) for line in expect_lines(FCA001_SELF)]

    def test_marked_mutator_discharges_callers(self, tmp_path):
        source = """\
from fecam.analysis.markers import mutates_planes

class TernaryPlanes:
    def _bump(self):
        pass

    @mutates_planes
    def set_row(self, row, value):
        self.value[row] = value
        self._bump()

def loader(planes, rows, values):
    for row, value in zip(rows, values):
        planes.set_row(row, value)
"""
        assert lint_source(tmp_path, source).ok


# -- FCA002: lock discipline ---------------------------------------------------

FCA002_FIXTURE = """\
from fecam.analysis.markers import lock_free, requires_lock
from fecam.service.locks import RWLock


class Store:
    @property
    @lock_free
    def width(self):
        return 8

    @property
    @requires_lock("read")
    def generation(self):
        return 0

    @requires_lock("read")
    def search_batch(self, queries):
        return []

    @requires_lock("write")
    def insert(self, word):
        return None

    def occupancy_count(self):
        return 0


class Service:
    def __init__(self, store):
        self.store = store
        self._rw = RWLock()

    def bad_unlocked_read(self):
        return self.store.search_batch([])  # BAD: no lock held

    def bad_read_needs_write(self):
        with self._rw.read_locked():
            self.store.insert("1")  # BAD: write needed, read held

    def bad_unannotated(self):
        return self.store.occupancy_count()  # BAD: unannotated

    def good_locked_read(self):
        with self._rw.read_locked():
            gen = self.store.generation
            return gen, self.store.search_batch([])

    def good_write_satisfies_read(self):
        with self._rw.write_locked():
            self.store.insert("1")
            return self.store.search_batch([])

    def good_lock_free(self):
        return self.store.width

    def write(self, txn):
        with self._rw.write_locked():
            return txn(self.store)

    def good_wrapper_lambda(self, word):
        return self.write(lambda store: store.insert(word))


class NotLockOwner:
    def __init__(self, store):
        self.store = store

    def free_for_all(self):
        return self.store.search_batch([])
"""


class TestLockDiscipline:
    def test_fixture(self, tmp_path):
        result = lint_source(tmp_path, FCA002_FIXTURE)
        assert codes_and_lines(result) == [
            ("FCA002", line) for line in expect_lines(FCA002_FIXTURE)]

    def test_marked_method_decorator_grants_mode(self, tmp_path):
        source = """\
from fecam.analysis.markers import requires_lock
from fecam.service.locks import RWLock


class Store:
    @requires_lock("read")
    def search_batch(self, queries):
        return []


class Service:
    def __init__(self, store):
        self.store = store
        self._rw = RWLock()

    @requires_lock("read")
    def _serve_one(self):
        return self.store.search_batch([])
"""
        assert lint_source(tmp_path, source).ok


# -- FCA003: frozen-dataclass mutation -----------------------------------------

FCA003_FIXTURE = """\
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Fom:
    energy: float = 0.0


@dataclass
class MutableStats:
    count: int = 0


def bad_assign(fom: Fom):
    fom.energy = 1.0  # BAD


def bad_constructed():
    point = Fom(energy=2.0)
    point.energy = 3.0  # BAD


def bad_setattr(fom: Fom):
    setattr(fom, "energy", 1.0)  # BAD


def bad_backdoor(fom):
    object.__setattr__(fom, "energy", 1.0)  # BAD


def good_replace(fom: Fom):
    return replace(fom, energy=1.0)


def good_mutable(stats: MutableStats):
    stats.count += 1
    return stats
"""

FCA003_POST_INIT = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class DesignPoint:
    rows: int = 0

    def __post_init__(self):
        object.__setattr__(self, "rows", max(0, self.rows))
"""


class TestFrozenMutation:
    def test_fixture(self, tmp_path):
        result = lint_source(tmp_path, FCA003_FIXTURE)
        assert codes_and_lines(result) == [
            ("FCA003", line) for line in expect_lines(FCA003_FIXTURE)]

    def test_post_init_backdoor_allowed(self, tmp_path):
        assert lint_source(tmp_path, FCA003_POST_INIT).ok


# -- FCA004: snapshot escape ---------------------------------------------------

FCA004_FIXTURE = """\
from dataclasses import replace
from fecam.service.locks import RWLock


class ServedResult:
    def __init__(self, result=None):
        self.result = result


class Service:
    def __init__(self, store):
        self.store = store
        self._rw = RWLock()

    def bad_live_result(self, future):
        results = self.store.search_batch(["1"])  # fecam: noqa[FCA002]
        future.set_result(ServedResult(result=results[0]))  # BAD

    def good_frozen_result(self, future):
        results = self.store.search_batch(["1"])  # fecam: noqa[FCA002]
        frozen = [replace(r) for r in results]
        future.set_result(ServedResult(result=frozen[0]))

    def good_rebound_name(self, future, outcomes):
        results = self.store.search_batch(["1"])  # fecam: noqa[FCA002]
        frozen = [replace(r) for r in results]
        for group, results in outcomes:
            for pending, result in zip(group, results):
                future.set_result(ServedResult(result=result))
"""

FCA004_BUFFERS = """\
class Exporter:
    def dump(self, planes):
        return planes.value  # BAD

    def dump_copy(self, planes):
        return planes.value.copy()

    def _internal(self, planes):
        return planes.value
"""


class TestSnapshotEscape:
    def test_live_results(self, tmp_path):
        result = lint_source(tmp_path, FCA004_FIXTURE)
        assert codes_and_lines(result) == [
            ("FCA004", line) for line in expect_lines(FCA004_FIXTURE)]

    def test_raw_buffer_returns(self, tmp_path):
        result = lint_source(tmp_path, FCA004_BUFFERS)
        assert codes_and_lines(result) == [
            ("FCA004", line) for line in expect_lines(FCA004_BUFFERS)]


# -- FCA005: hot-path hygiene --------------------------------------------------

FCA005_FIXTURE = """\
import time
import numpy as np
from fecam.analysis.markers import hot_path


@hot_path
def bad_kernel(rows, out, arena):
    start = time.time()  # BAD
    scratch = np.copy(arena)  # BAD
    local = arena.copy()  # BAD
    for row in rows:
        out.append(row)  # BAD
    return start, scratch, local


@hot_path
def good_kernel(rows, arena):
    start = time.perf_counter()
    gathered = [row for row in rows]
    prepared = list(rows)
    prepared.append(0)
    return start, gathered, prepared


def cold_path(rows, out, arena):
    start = time.time()
    for row in rows:
        out.append(row)
    return start, np.copy(arena)
"""


FCA005_EXEMPT_FIXTURE = """\
import time
from fecam.analysis.markers import hot_path


@hot_path(exempt="ctypes shim: loops run in compiled code")
def exempt_shim(rows, out, arena):
    start = time.time()
    local = arena.copy()
    for row in rows:
        out.append(row)
    return start, local


@hot_path
def still_checked(rows, out):
    for row in rows:
        out.append(row)  # BAD
"""

FCA005_NON_EXEMPT_CALLS = """\
import time
from fecam.analysis.markers import hot_path


@hot_path(exempt="")
def empty_reason(out, rows):
    for row in rows:
        out.append(row)  # BAD: empty reason exempts nothing


@hot_path(exempt=reason_variable)
def dynamic_reason(out, rows):
    for row in rows:
        out.append(row)  # BAD: reason must be a literal
"""


class TestHotPathHygiene:
    def test_fixture(self, tmp_path):
        result = lint_source(tmp_path, FCA005_FIXTURE)
        assert codes_and_lines(result) == [
            ("FCA005", line) for line in expect_lines(FCA005_FIXTURE)]

    def test_exempt_decorator_suppresses_checks(self, tmp_path):
        result = lint_source(tmp_path, FCA005_EXEMPT_FIXTURE)
        assert codes_and_lines(result) == [
            ("FCA005", line) for line in
            expect_lines(FCA005_EXEMPT_FIXTURE)]

    def test_only_literal_nonempty_reasons_exempt(self, tmp_path):
        result = lint_source(tmp_path, FCA005_NON_EXEMPT_CALLS)
        assert codes_and_lines(result) == [
            ("FCA005", line) for line in
            expect_lines(FCA005_NON_EXEMPT_CALLS)]


# -- FCA006: observability hygiene ---------------------------------------------

FCA006_FIXTURE = """\
SPAN_NAME = "store.search_batch"
BAD_CONSTANT = "has spaces"


def instrument(registry, trace, targets, index):
    registry.counter("fecam_requests_total")
    registry.counter(f"fecam_{index}_total")  # BAD: dynamic
    registry.counter("bad name!")  # BAD: regex
    registry.gauge(unknown_name)  # BAD: unresolvable
    trace.record(SPAN_NAME, 0.0, 1.0)
    trace.record("queue", 0.0, 1.0)
    trace.record("Queue Stage", 0.0, 1.0)  # BAD: regex
    trace.record(BAD_CONSTANT, 0.0, 1.0)  # BAD: constant regex


def forwarding_wrapper(trace, name):
    trace.record(name, 0.0, 1.0)
"""


class TestObsHygiene:
    def test_fixture(self, tmp_path):
        result = lint_source(tmp_path, FCA006_FIXTURE)
        assert codes_and_lines(result) == [
            ("FCA006", line) for line in expect_lines(FCA006_FIXTURE)]

    def test_record_span_and_trace_stage(self, tmp_path):
        source = """\
def kernel(targets):
    record_span(targets, "fabric.merge", 0.0, 1.0)
    record_span(targets, "Bad Name", 0.0, 1.0)  # BAD
    with trace_stage("kernel.fused"):
        pass
"""
        result = lint_source(tmp_path, source)
        assert codes_and_lines(result) == [
            ("FCA006", line) for line in expect_lines(source)]


# -- recovery path: the durable subsystem's shapes, as golden fixtures ---------

RECOVERY_FCA001_FIXTURE = """\
from fecam.analysis.markers import mutates_planes


class TernaryPlanes:
    def _bump(self):
        pass

    @mutates_planes
    def load(self, value, care, valid):
        self.value[...] = value
        self.care[...] = care
        self.valid[...] = valid
        self._bump()


def restore_raw(planes, value, care, valid):
    planes.value[...] = value  # BAD: wholesale write, no bump
    planes.care[...] = care  # BAD
    planes.valid[...] = valid  # BAD


def restore_via_load(planes, value, care, valid):
    planes.load(value, care, valid)
"""

RECOVERY_FCA002_FIXTURE = """\
from fecam.analysis.markers import requires_lock
from fecam.service.locks import RWLock


class DurableStore:
    @requires_lock("read")
    def snapshot(self):
        return "snap"

    @requires_lock("write")
    def insert(self, word):
        return None


class DurableService:
    def __init__(self, store):
        self.store = store
        self._rw = RWLock()

    def bad_unlocked_snapshot(self):
        return self.store.snapshot()  # BAD: snapshot needs the read lock

    def good_snapshot_rides_the_read_lock(self):
        with self._rw.read_locked():
            return self.store.snapshot()

    def write(self, txn):
        with self._rw.write_locked():
            return txn(self.store)

    def good_reshard_commit_txn(self, word):
        return self.write(lambda store: store.insert(word))
"""


class TestRecoveryPathFixtures:
    def test_raw_planes_restore_flagged(self, tmp_path):
        result = lint_source(tmp_path, RECOVERY_FCA001_FIXTURE)
        assert codes_and_lines(result) == [
            ("FCA001", line)
            for line in expect_lines(RECOVERY_FCA001_FIXTURE)]

    def test_unlocked_snapshot_flagged(self, tmp_path):
        result = lint_source(tmp_path, RECOVERY_FCA002_FIXTURE)
        assert codes_and_lines(result) == [
            ("FCA002", line)
            for line in expect_lines(RECOVERY_FCA002_FIXTURE)]


# -- the shipped tree is the ultimate good fixture -----------------------------

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.mark.skipif(not (REPO_ROOT / "src" / "fecam").is_dir(),
                    reason="repo layout not available")
def test_shipped_tree_lints_clean():
    """Acceptance criterion: src/fecam has zero violations, no baseline."""
    result = run_lint([REPO_ROOT / "src" / "fecam"], root=REPO_ROOT)
    assert result.ok, "\n".join(v.render() for v in result.violations)
