"""Seeded-violation tests for the runtime sanitizer.

Positive direction: disciplined use (every access under the right lock
mode, every mutation bumping the generation) produces zero violations.
Negative direction: each invariant is deliberately broken — a lock
dropped, a generation bump skipped in a test double — and the test
asserts the sanitizer reports exactly that violation.  Lock misuse
that would deadlock (read->write upgrade, re-entrant write) must raise
immediately rather than hang the suite.
"""

import threading

import numpy as np
import pytest

from fecam.analysis import sanitize
from fecam.analysis.sanitize import (LockMonitor, SanitizerError,
                                     instrument_planes)
from fecam.planes import TernaryPlanes
from fecam.service import SearchService
from fecam.service.locks import RWLock
from fecam.store import CamStore, StoreConfig


@pytest.fixture(autouse=True)
def clean_collector():
    sanitize.reset()
    yield
    sanitize.reset()


@pytest.fixture()
def monitored():
    lock = RWLock()
    monitor = LockMonitor(lock)
    return lock, monitor


def kinds():
    return [violation.kind for violation in sanitize.violations()]


def ops():
    return [violation.op for violation in sanitize.violations()]


class TestEnvGate:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("FECAM_SANITIZE", raising=False)
        assert not sanitize.enabled()
        assert sanitize.maybe_sanitize_service(object()) is None

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes", "raise"])
    def test_enabled_values(self, monkeypatch, value):
        monkeypatch.setenv("FECAM_SANITIZE", value)
        assert sanitize.enabled()

    def test_raise_mode(self, monkeypatch):
        monkeypatch.setenv("FECAM_SANITIZE", "raise")
        assert sanitize.raise_mode()
        monkeypatch.setenv("FECAM_SANITIZE", "1")
        assert not sanitize.raise_mode()


class TestLockMonitor:
    def test_tracks_read_and_write_holds(self, monitored):
        lock, monitor = monitored
        assert not monitor.holds_read()
        with lock.read_locked():
            assert monitor.holds_read()
            assert not monitor.holds_write()
        assert not monitor.holds_read()
        with lock.write_locked():
            assert monitor.holds_write()
            assert monitor.holds_read()  # write satisfies read
        assert not monitor.holds_write()

    def test_locksets_are_per_thread(self, monitored):
        lock, monitor = monitored
        seen = {}

        def other():
            seen["read"] = monitor.holds_read()

        with lock.read_locked():
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
        assert seen["read"] is False

    def test_upgrade_deadlock_raises(self, monitored):
        lock, _ = monitored
        with lock.read_locked():
            with pytest.raises(SanitizerError, match="upgrade"):
                lock.acquire_write()

    def test_reentrant_write_raises(self, monitored):
        lock, _ = monitored
        with lock.write_locked():
            with pytest.raises(SanitizerError, match="re-entrant"):
                lock.acquire_write()

    def test_read_while_writing_raises(self, monitored):
        lock, _ = monitored
        with lock.write_locked():
            with pytest.raises(SanitizerError, match="self-deadlock"):
                lock.acquire_read()

    def test_unmonitored_lock_unchanged(self):
        lock = RWLock()
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass


def make_guarded_planes(rows=8, width=8):
    lock = RWLock()
    monitor = LockMonitor(lock)
    planes = TernaryPlanes(rows, width)
    instrument_planes(planes, monitor, label="test.planes")
    return lock, planes


def packed_row(planes, fill=1):
    value = np.full(planes.n_chunks, fill, dtype=np.uint64)
    care = np.full(planes.n_chunks, 3, dtype=np.uint64)
    return value, care


class TestInstrumentedPlanes:
    def test_disciplined_use_is_clean(self):
        lock, planes = make_guarded_planes()
        value, care = packed_row(planes)
        with lock.write_locked():
            planes.set_row(0, value, care)
        with lock.read_locked():
            planes.derived()
            planes.stored_word(0)
        assert sanitize.violations() == []

    def test_unlocked_write_reported(self):
        _lock, planes = make_guarded_planes()
        value, care = packed_row(planes)
        planes.set_row(0, value, care)
        assert "unlocked-write" in kinds()
        assert "test.planes.set_row" in ops()

    def test_unlocked_read_reported(self):
        _lock, planes = make_guarded_planes()
        planes.derived()
        assert "unlocked-read" in kinds()

    def test_read_lock_insufficient_for_write(self):
        lock, planes = make_guarded_planes()
        value, care = packed_row(planes)
        with lock.read_locked():
            planes.set_row(0, value, care)
        assert "unlocked-write" in kinds()

    def test_missing_bump_in_test_double_reported(self):
        class SkipsBumpPlanes(TernaryPlanes):
            # The seeded bug: writes content, "forgets" the bump.
            def set_row(self, row, value, care):
                self.value[row] = value
                self.care[row] = care
                self.valid[row] = True

        lock = RWLock()
        monitor = LockMonitor(lock)
        planes = SkipsBumpPlanes(8, 8)
        instrument_planes(planes, monitor, label="double")
        value, care = packed_row(planes)
        with lock.write_locked():
            planes.set_row(0, value, care)
        assert kinds() == ["missing-generation-bump"]
        assert ops() == ["double.set_row"]

    def test_identical_rewrite_needs_no_bump(self):
        # set_row's no-op fast path (bit-identical rewrite) must not be
        # punished: content did not change, no bump owed.
        lock, planes = make_guarded_planes()
        value, care = packed_row(planes)
        with lock.write_locked():
            planes.set_row(0, value, care)
            generation = planes.generation
            planes.set_row(0, value, care)
        assert planes.generation == generation
        assert sanitize.violations() == []

    def test_unlocked_bump_reported(self):
        _lock, planes = make_guarded_planes()
        planes._bump()
        assert kinds() == ["unlocked-write"]
        assert ops() == ["test.planes._bump"]

    def test_inactive_gate_suppresses_checks(self):
        lock = RWLock()
        monitor = LockMonitor(lock)
        planes = TernaryPlanes(8, 8)
        instrument_planes(planes, monitor, label="gated",
                          active=lambda: False)
        planes.derived()
        value, care = packed_row(planes)
        planes.set_row(0, value, care)
        assert sanitize.violations() == []


class TestServiceIntegration:
    @pytest.mark.parametrize("backend", ["array", "fabric"])
    def test_disciplined_service_is_clean(self, monkeypatch, backend):
        monkeypatch.setenv("FECAM_SANITIZE", "1")
        banks = 4 if backend == "fabric" else 1
        store = CamStore(StoreConfig(width=8, rows=64, banks=banks,
                                     backend=backend))
        with SearchService(store) as service:
            service.insert("1010XXXX", key="a")
            service.insert_many(["0101XXXX"], keys=["b"])
            assert service.search("10101111").result.matches
            service.update("b", "0101XX10")
            service.delete("a")
            service.stats
        assert sanitize.violations() == []

    def test_direct_store_write_reported(self, monkeypatch):
        monkeypatch.setenv("FECAM_SANITIZE", "1")
        store = CamStore(StoreConfig(width=8, rows=64, banks=4,
                                     backend="fabric"))
        with SearchService(store) as service:
            service.insert("1010XXXX", key="a")
            # The seeded bug: bypassing service.write() while the
            # service is live mutates the arena without the write lock.
            store.insert("0000XXXX", key="rogue")
            assert "unlocked-write" in kinds()

    def test_direct_arena_read_reported(self, monkeypatch):
        monkeypatch.setenv("FECAM_SANITIZE", "1")
        store = CamStore(StoreConfig(width=8, rows=64, banks=4,
                                     backend="fabric"))
        with SearchService(store):
            store.backend.fabric.arena.derived()
        assert "unlocked-read" in kinds()

    def test_closed_service_deactivates(self, monkeypatch):
        monkeypatch.setenv("FECAM_SANITIZE", "1")
        store = CamStore(StoreConfig(width=8, rows=32))
        service = SearchService(store)
        service.insert("1010XXXX", key="a")
        service.close()
        sanitize.reset()
        # Post-close maintenance access is not a serving-path hazard.
        store.insert("0101XXXX", key="post")
        assert sanitize.violations() == []

    def test_preload_before_service_is_unchecked(self, monkeypatch):
        monkeypatch.setenv("FECAM_SANITIZE", "1")
        store = CamStore(StoreConfig(width=8, rows=64, banks=4,
                                     backend="fabric"))
        store.insert_many(["1010XXXX", "0101XXXX"], keys=["a", "b"])
        with SearchService(store) as service:
            assert service.search("10101111").result.matches
        assert sanitize.violations() == []

    def test_raise_mode_raises_at_call_site(self, monkeypatch):
        monkeypatch.setenv("FECAM_SANITIZE", "raise")
        store = CamStore(StoreConfig(width=8, rows=64, banks=4,
                                     backend="fabric"))
        with SearchService(store) as service:
            service.insert("1010XXXX", key="a")
            with pytest.raises(SanitizerError, match="unlocked-write"):
                store.insert("0000XXXX", key="rogue")
