"""Runtime behavior of the hot-path marker's two forms.

The bare form is the historical FCA005 opt-in; the called form
(``@hot_path(exempt="reason")``) marks the function *and* records an
auditable exemption reason for the linter and the sanitizer.
"""

import pytest

from fecam.analysis.markers import (hot_path, hot_path_exemption,
                                    is_hot_path)


def test_bare_form_marks_without_exemption():
    @hot_path
    def kernel():
        pass

    assert is_hot_path(kernel)
    assert hot_path_exemption(kernel) is None


def test_called_form_marks_and_records_reason():
    @hot_path(exempt="loops run in compiled code")
    def shim():
        pass

    assert is_hot_path(shim)
    assert hot_path_exemption(shim) == "loops run in compiled code"


@pytest.mark.parametrize("bad", [None, ""])
def test_called_form_requires_a_reason(bad):
    with pytest.raises(ValueError, match="exempt"):
        hot_path(exempt=bad)


def test_decorators_are_runtime_noops():
    def plain(x):
        return x + 1

    marked = hot_path(plain)
    assert marked is plain
    assert marked(2) == 3

    wrapped = hot_path(exempt="why")(plain)
    assert wrapped is plain


def test_introspection_on_unmarked_objects():
    def cold():
        pass

    assert not is_hot_path(cold)
    assert hot_path_exemption(cold) is None
