"""Framework-level tests: registry, noqa, baseline, reporters, CLI.

The rules themselves are covered by golden fixtures in
``test_lint_rules.py``; here we prove the machinery around them — the
parts CI and editors depend on (exit codes, output formats, suppression
semantics).
"""

import json
import re

from pathlib import Path

import pytest

from fecam.analysis.__main__ import (EXIT_CLEAN, EXIT_ERROR,
                                     EXIT_VIOLATIONS, main)
from fecam.analysis.baseline import (apply_baseline, load_baseline,
                                     write_baseline)
from fecam.analysis.linter import (LintError, all_rules, load_module,
                                   run_lint)
from fecam.analysis.reporters import render_json, render_text

BAD_SOURCE = """\
class Engine:
    def rewrite(self, planes, row, value):
        planes.value[row] = value
"""

BAD_NOQA_CODE = """\
class Engine:
    def rewrite(self, planes, row, value):
        planes.value[row] = value  # fecam: noqa[FCA001]
"""

BAD_NOQA_BARE = """\
class Engine:
    def rewrite(self, planes, row, value):
        planes.value[row] = value  # fecam: noqa
"""

BAD_NOQA_WRONG = """\
class Engine:
    def rewrite(self, planes, row, value):
        planes.value[row] = value  # fecam: noqa[FCA005]
"""


def lint_file(tmp_path, source, name="mod.py", **kwargs):
    path = tmp_path / name
    path.write_text(source)
    return run_lint([path], root=tmp_path, **kwargs)


class TestRegistry:
    def test_six_plus_rules_with_unique_codes(self):
        rules = all_rules()
        codes = [rule.code for rule in rules]
        assert len(codes) >= 6
        assert len(set(codes)) == len(codes)
        assert codes == sorted(codes)
        assert all(re.fullmatch(r"FCA\d{3}", code) for code in codes)

    def test_rules_carry_name_and_description(self):
        for rule in all_rules():
            assert rule.name and rule.description


class TestNoqa:
    def test_matching_code_suppresses(self, tmp_path):
        result = lint_file(tmp_path, BAD_NOQA_CODE)
        assert result.ok
        assert result.suppressed_noqa == 1

    def test_bare_noqa_suppresses_all(self, tmp_path):
        assert lint_file(tmp_path, BAD_NOQA_BARE).ok

    def test_wrong_code_does_not_suppress(self, tmp_path):
        result = lint_file(tmp_path, BAD_NOQA_WRONG)
        assert not result.ok
        assert result.violations[0].code == "FCA001"

    def test_noqa_parsing(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("x = 1  # fecam: noqa[FCA001, FCA002]\ny = 2\n")
        module = load_module(path)
        assert module.noqa == {1: frozenset({"FCA001", "FCA002"})}


class TestSelectIgnore:
    def test_select_runs_only_requested_rule(self, tmp_path):
        result = lint_file(tmp_path, BAD_SOURCE, select={"FCA006"})
        assert result.ok

    def test_ignore_skips_rule(self, tmp_path):
        result = lint_file(tmp_path, BAD_SOURCE, ignore={"FCA001"})
        assert result.ok


class TestBaseline:
    def test_roundtrip_suppresses_known_violations(self, tmp_path):
        result = lint_file(tmp_path, BAD_SOURCE)
        assert not result.ok
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, result.violations)
        filtered = apply_baseline(result, load_baseline(baseline_path))
        assert filtered.ok
        assert filtered.suppressed_baseline == len(result.violations)

    def test_new_violations_still_fail(self, tmp_path):
        result = lint_file(tmp_path, BAD_SOURCE)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, result.violations)
        both = BAD_SOURCE + (
            "    def clear(self, planes, row):\n"
            "        planes.care[row] = 0\n")
        result2 = lint_file(tmp_path, both)
        filtered = apply_baseline(result2, load_baseline(baseline_path))
        assert len(filtered.violations) == 1
        assert "clear" in filtered.violations[0].message

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_shipped_baseline_is_empty(self):
        repo = Path(__file__).resolve().parents[2]
        shipped = repo / "analysis-baseline.json"
        assert shipped.exists()
        assert load_baseline(shipped) == set()


class TestReporters:
    def test_text_format(self, tmp_path):
        result = lint_file(tmp_path, BAD_SOURCE)
        text = render_text(result)
        assert re.search(r"mod\.py:3:\d+: FCA001 ", text)
        assert "1 violation (1 files checked)" in text

    def test_json_format(self, tmp_path):
        result = lint_file(tmp_path, BAD_SOURCE)
        data = json.loads(render_json(result))
        assert data["ok"] is False
        assert data["files_checked"] == 1
        violation = data["violations"][0]
        assert violation["code"] == "FCA001"
        assert violation["path"] == "mod.py"
        assert violation["line"] == 3


class TestErrors:
    def test_syntax_error_is_lint_error(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        with pytest.raises(LintError):
            run_lint([path])

    def test_missing_path_is_lint_error(self, tmp_path):
        with pytest.raises(LintError):
            run_lint([tmp_path / "missing.py"])


class TestCli:
    def test_clean_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text("x = 1\n")
        assert main(["lint", str(path)]) == EXIT_CLEAN
        assert "0 violations" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(BAD_SOURCE)
        assert main(["lint", str(path)]) == EXIT_VIOLATIONS
        assert "FCA001" in capsys.readouterr().out

    def test_missing_path_exit_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "gone.py")]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(BAD_SOURCE)
        assert main(["lint", str(path), "--format", "json"]) \
            == EXIT_VIOLATIONS
        data = json.loads(capsys.readouterr().out)
        assert data["violations"][0]["code"] == "FCA001"

    def test_select_and_ignore(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(BAD_SOURCE)
        assert main(["lint", str(path), "--select", "FCA006"]) == EXIT_CLEAN
        assert main(["lint", str(path), "--ignore", "FCA001"]) == EXIT_CLEAN
        capsys.readouterr()

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text(BAD_SOURCE)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(path), "--write-baseline",
                     str(baseline), "--root", str(tmp_path)]) == EXIT_CLEAN
        assert main(["lint", str(path), "--baseline", str(baseline),
                     "--root", str(tmp_path)]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_rules_subcommand(self, capsys):
        assert main(["rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in ("FCA001", "FCA002", "FCA003", "FCA004", "FCA005",
                     "FCA006"):
            assert code in out
