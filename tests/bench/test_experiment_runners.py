"""Smoke tests for the experiment runners (shape of returned data).

The benches assert the paper's claims; these tests just pin the runner
interfaces so EXPERIMENTS.md regeneration cannot silently break.
"""

import pytest

from fecam.bench import (ablation_divider_margins, ablation_early_termination,
                         fig1_iv_curves, fig6_shared_driver, format_table,
                         print_experiment, ratio, table4_fom)
from fecam.designs import DesignKind


class TestRunners:
    def test_fig1_structure(self):
        data = fig1_iv_curves(points=7)
        assert set(data) == {"sg_fg_read", "dg_bg_read"}
        for curve in data.values():
            assert len(curve["v"]) == 7
            assert len(curve["i_hvt"]) == len(curve["i_lvt"]) == 7
        assert data["dg_bg_read"]["on_off_at_2v"] > 1e3

    def test_table4_covers_all_designs(self):
        rows = table4_fom(rows=64, word_length=16)
        assert len(rows) == len(DesignKind)
        for entry in rows:
            assert set(entry) == {"design", "paper", "measured"}
            assert entry["measured"]["cell_area_um2"] > 0

    def test_fig6_rows(self):
        rows = fig6_shared_driver(rows=32, cols=32)
        assert len(rows) == 4
        by = {r["design"]: r for r in rows}
        assert by["1.5T1DG-Fe"]["sharing_supported"]

    def test_ablation_early_termination_monotone(self):
        rows = ablation_early_termination(miss_rates=(0.0, 0.5, 1.0),
                                          word_length=16)
        for design in ("1.5T1SG-Fe", "1.5T1DG-Fe"):
            series = [r["saving_pct"] for r in rows if r["design"] == design]
            assert series == sorted(series)

    def test_ablation_divider(self):
        rows = ablation_divider_margins()
        assert all(r["functional"] for r in rows)


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bbbb"], [[1, 2.5], ["xx", None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])
        assert "-" in lines[1]
        assert "2.5" in text and "xx" in text

    def test_ratio(self):
        assert ratio(2.0, 3.0) == pytest.approx(1.5)
        assert ratio(None, 3.0) is None
        assert ratio(0.0, 3.0) is None

    def test_print_experiment_returns_text(self, capsys):
        text = print_experiment("T", ["h"], [[1]])
        captured = capsys.readouterr()
        assert "=== T ===" in text
        assert text in captured.out + "\n" or "T" in captured.out
