"""Frozen-snapshot semantics of ``QueryResult.freeze`` / LazyMatches.

The serve path's consistency contract: a served result must be
detached from the backend's live ``Match`` objects (which ``update()``
mutates in place), while materializing its ``Match`` views only when
somebody actually inspects them.
"""

from fecam.store.result import LazyMatches, Match, Query, QueryResult


def live_matches():
    return [Match(key="a", word="0101", priority=0.0, bank=0, row=0,
                  payload={"tag": 1}, seq=0),
            Match(key="b", word="1111", priority=1.0, bank=1, row=3,
                  payload=None, seq=1)]


def test_freeze_detaches_from_live_matches():
    live = live_matches()
    result = QueryResult(query=Query(bits="0101"), matches=live,
                         energy=2.0, latency=0.5)
    frozen = result.freeze()
    # A later in-place write (what update() does) must not leak in.
    live[0].word = "XXXX"
    live[0].payload = {"tag": 99}
    assert frozen.matches[0].word == "0101"
    assert frozen.matches[0].payload == {"tag": 1}
    assert frozen.matches[0] is not live[0]
    # Scalars and the query ride along unchanged.
    assert frozen.energy == 2.0
    assert frozen.latency == 0.5
    assert frozen.query == result.query
    assert frozen.cached is result.cached


def test_lazy_matches_sequence_protocol():
    lazy = LazyMatches.snapshot(live_matches())
    assert len(lazy) == 2
    assert lazy[0].key == "a"
    assert lazy[-1].key == "b"
    assert [m.key for m in lazy] == ["a", "b"]
    assert lazy == live_matches()          # element-wise dataclass eq
    assert live_matches() == list(lazy)
    assert lazy != [live_matches()[0]]
    assert lazy[0:1] == [lazy[0]]


def test_materialization_is_lazy_and_stable():
    lazy = LazyMatches.snapshot(live_matches())
    assert lazy._items is None             # nothing built yet
    first = lazy[0]
    assert lazy._items is not None         # built once on first access
    assert lazy[0] is first                # identity stable thereafter
    assert list(lazy)[0] is first


def test_result_convenience_accessors_work_frozen():
    result = QueryResult(query=Query(bits="0101"),
                         matches=live_matches()).freeze()
    assert result.best.key == "a"
    assert result.match_keys == ["a", "b"]
    assert len(result) == 2
    assert bool(result)                    # zero-match results stay truthy
    empty = QueryResult(query=Query(bits="0101")).freeze()
    assert empty.best is None
    assert len(empty) == 0
    assert bool(empty)
