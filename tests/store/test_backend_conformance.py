"""Backend conformance: one shared battery, every backend configuration.

Every :class:`~fecam.store.SearchBackend` must satisfy the identical
store contract — write/erase/update/search/search_batch/stats/cache
semantics.  This suite is that contract, written once and run over
every supported backend configuration through a parametrized fixture:

* ``array``    — :class:`ArrayBackend` (one :class:`TernaryCAM`);
* ``fabric-1`` — :class:`FabricBackend` with a single bank;
* ``fabric-4`` — :class:`FabricBackend` sharded over four banks;
* ``cluster``  — :class:`~fecam.cluster.ClusterBackend`: the same
  fabric behind a shared-memory arena, searches served by two worker
  *processes* over zero-copy views.  Running the identical battery
  proves the multi-process path is bit-identical — matches, energy,
  latency, counters — to the in-process backends.

Adding a backend (or a bank count) to ``BACKEND_CONFIGS`` runs the
whole battery against it with zero new test code — the replacement for
the historical per-backend test duplication in ``tests/store/``.
"""

import pytest

from fecam.cluster import ClusterBackend
from fecam.designs import DesignKind
from fecam.errors import OperationError, TernaryValueError
from fecam.functional import EnergyModel
from fecam.store import (ArrayBackend, CamStore, FabricBackend, Query,
                         StoreConfig)

#: Every backend configuration the battery must pass on.
BACKEND_CONFIGS = [
    pytest.param(dict(backend="array", banks=1), id="array"),
    pytest.param(dict(backend="fabric", banks=1), id="fabric-1"),
    pytest.param(dict(backend="fabric", banks=4), id="fabric-4"),
    pytest.param(dict(backend="cluster", banks=2), id="cluster"),
]

_EXPECTED_BACKEND = {"array": ArrayBackend, "fabric": FabricBackend,
                     "cluster": ClusterBackend}


def fast_model(width):
    """Explicit figures of merit: no circuit evaluation in unit tests."""
    return EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=0.8e-15,
                       e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                       latency_2step=2.3e-9, write_energy_per_cell=0.4e-15)


@pytest.fixture(params=BACKEND_CONFIGS)
def backend_kw(request):
    """The backend selector of one conformance run."""
    return dict(request.param)


@pytest.fixture
def store_factory(backend_kw):
    """Build a store on the parametrized backend configuration.

    ``cluster`` is not a :data:`~fecam.store.config.BACKEND_KINDS`
    config value (it wraps a fabric config), so it is built explicitly
    and injected via ``CamStore(backend=...)``; its worker processes
    and shared segments are torn down when the test ends.
    """
    backends = []

    def make(width=8, rows=8, **kw):
        kw.setdefault("energy_model", fast_model(width))
        if backend_kw["backend"] == "cluster":
            config = StoreConfig(width=width, rows=rows, backend="fabric",
                                 banks=backend_kw["banks"], **kw)
            backend = ClusterBackend(config, workers=2)
            backends.append(backend)
            return CamStore(backend=backend)
        return CamStore(StoreConfig(width=width, rows=rows,
                                    **backend_kw, **kw))

    yield make
    for backend in backends:
        backend.close()


@pytest.fixture
def store(store_factory):
    return store_factory()


class TestBackendSelection:
    def test_fixture_builds_the_advertised_backend(self, store, backend_kw):
        assert isinstance(store.backend,
                          _EXPECTED_BACKEND[backend_kw["backend"]])
        assert store.banks == backend_kw["banks"]
        assert store.stats.backend == store.backend.name


class TestWriteEraseUpdate:
    def test_insert_search_delete_update(self, store):
        store.insert("1010XXXX", key="a")
        store.insert("10101111", key="b")
        assert store.search("10101111").match_keys == ["a", "b"]
        assert store.search_first("10101010").key == "a"
        store.delete("b")
        assert "b" not in store and "a" in store
        assert store.search("10101111").match_keys == ["a"]
        store.update("a", "0000XXXX")
        assert store.search("10101111").match_keys == []
        assert store.search("00001111").match_keys == ["a"]

    def test_erased_rows_are_reusable_and_never_ghost_match(
            self, store_factory):
        store = store_factory(rows=2)
        store.insert("11111111", key="a")
        store.insert("00000000", key="b")
        store.delete("a")
        assert store.search("11111111").match_keys == []  # no ghost
        store.insert("1111XXXX", key="c")  # the freed row is reusable
        assert len(store) == 2
        assert store.search("11111111").match_keys == ["c"]

    def test_generation_advances_once_per_operation(self, store):
        base = store.generation
        store.insert("1010XXXX", key="a")
        store.insert_many(["0101XXXX", "11110000"], keys=["b", "c"])
        store.update("a", "1010XX00")
        store.delete("b")
        assert store.generation == base + 4

    def test_priority_order_overrides_insertion(self, store):
        store.insert("XXXXXXXX", key="low", priority=10)
        store.insert("XXXXXXXX", key="high", priority=1)
        assert store.search("11110000").match_keys == ["high", "low"]
        assert [m.key for m in store.entries()] == ["high", "low"]

    def test_auto_keys_are_unique(self, store):
        m1 = store.insert("1111XXXX")
        m2 = store.insert("1111XXXX")
        assert m1.key != m2.key
        assert len(store) == 2

    def test_bulk_insert_fills_none_keys_with_unique_autos(self, store):
        matches = store.insert_many(
            ["1111XXXX", "0000XXXX", "1010XXXX"], keys=[None, "b", None])
        assert matches[1].key == "b"
        assert matches[0].key != matches[2].key
        assert len(store) == 3

    def test_duplicate_key_rejected(self, store):
        store.insert("1111XXXX", key="k")
        with pytest.raises(OperationError):
            store.insert("0000XXXX", key="k")
        with pytest.raises(OperationError):
            store.insert_many(["0000XXXX"], keys=["k"])
        with pytest.raises(OperationError):
            store.insert_many(["0000XXXX", "1111XXXX"], keys=["x", "x"])

    def test_insert_many_matches_scalar_loop(self, store_factory):
        bulk = store_factory(rows=16)
        loop = store_factory(rows=16)
        words = ["1010XXXX", "0101XXXX", "11110000", "XXXXXXXX"]
        bulk.insert_many(words, keys=list("abcd"), payloads=[1, 2, 3, 4])
        for key, payload, word in zip("abcd", [1, 2, 3, 4], words):
            loop.insert(word, key=key, payload=payload)
        for query in ("10101111", "01010000", "11110000"):
            lhs, rhs = bulk.search(query), loop.search(query)
            assert lhs.match_keys == rhs.match_keys
            assert lhs.energy == rhs.energy
            assert lhs.latency == rhs.latency

    def test_bad_word_in_bulk_insert_is_atomic(self, store):
        with pytest.raises(TernaryValueError) as excinfo:
            store.insert_many(["1010XXXX", "10Z0XXXX"], keys=["a", "b"])
        assert "word 1" in str(excinfo.value)
        assert len(store) == 0 and "a" not in store

    def test_alias_words_normalized(self, store):
        store.insert("1010**??", key="a")
        assert store.get("a").word == "1010XXXX"
        store.insert_many(["0101****"], keys=["b"])
        assert store.get("b").word == "0101XXXX"

    def test_capacity_enforced(self, store_factory):
        store = store_factory(rows=3)
        # Fabric capacity may round up to banks * rows_per_bank.
        for i in range(store.capacity):
            store.insert("11111111", key=i)
        with pytest.raises(OperationError):
            store.insert("1010XXXX")
        with pytest.raises(OperationError):
            store_factory(rows=1).insert_many(
                ["11111111"] * 8, keys=list(range(8)))

    def test_payload_roundtrip(self, store):
        store.insert("1111XXXX", key="a", payload={"hop": 3})
        assert store.search_first("11111111").payload == {"hop": 3}
        store.update("a", "1111XXXX", payload={"hop": 4})
        assert store.get("a").payload == {"hop": 4}


class TestSearch:
    def test_mask_excludes_positions(self, store):
        store.insert("11110000", key="a")
        assert store.search("11110011").match_keys == []
        masked = store.search("11110011", mask="11111100")
        assert masked.match_keys == ["a"]
        assert store.search(Query("11110011",
                                  mask="11111100")).match_keys == ["a"]

    def test_mixed_masks_in_batch_rejected(self, store):
        with pytest.raises(OperationError):
            store.search_batch([Query("11110000", mask="11111100"),
                                Query("11110000", mask="00111111")])
        # A masked Query must not leak its mask onto an unmasked
        # neighbour (which sequential semantics would search unmasked).
        with pytest.raises(OperationError):
            store.search_batch([Query("11110000", mask="11111100"),
                                "11110000"])
        with pytest.raises(OperationError):
            store.search_batch([Query("11110000", mask="11111100")],
                               mask="00111111")
        # Agreeing masks are fine.
        store.insert("11110000", key="a")
        results = store.search_batch(
            [Query("11110011", mask="11111100"), "11110011"],
            mask="11111100")
        assert [r.match_keys for r in results] == [["a"], ["a"]]

    def test_search_batch_matches_scalar_loop(self, store_factory):
        store = store_factory(rows=16)
        store.insert_many(["1010XXXX", "0101XXXX", "10101111"],
                          keys=list("abc"))
        queries = ["10101111", "01011111", "10101111", "00000000"]
        batched = store.search_batch(queries, use_cache=False)
        scalars = [store.search(q, use_cache=False) for q in queries]
        assert [r.match_keys for r in batched] == \
            [r.match_keys for r in scalars]
        assert [r.energy for r in batched] == [r.energy for r in scalars]
        assert [r.latency for r in batched] == \
            [r.latency for r in scalars]
        assert store.search_batch([]) == []


class TestStats:
    def test_counters_and_repr(self, store):
        store.insert("1111XXXX", key="a")
        store.search("11111111")
        stats = store.stats
        assert stats.occupancy == 1 and stats.capacity >= 8
        assert stats.searches == 1 and stats.array_searches == 1
        assert stats.writes == 1
        assert stats.energy_total > 0
        assert stats.worst_latency > 0
        assert stats.backend == store.backend.name
        text = repr(store)
        assert store.backend.name in text and \
            f"1/{store.capacity}" in text


class TestCacheSemantics:
    def test_cache_hits_cost_nothing(self, store_factory):
        store = store_factory(cache_size=8)
        store.insert("1010XXXX", key="a")
        first = store.search("10101111")
        energy = store.stats.energy_total
        assert not first.cached
        again = store.search("10101111")
        assert again.cached and again.energy == 0.0 and \
            again.latency == 0.0
        assert again.match_keys == first.match_keys
        assert store.stats.energy_total == energy  # no array fired
        assert store.stats.cache_hits == 1
        assert store.stats.array_searches == 1
        assert store.stats.searches == 2

    def test_any_write_invalidates(self, store_factory):
        store = store_factory(cache_size=8)
        store.insert("1010XXXX", key="a")
        assert store.search("10101111").match_keys == ["a"]
        store.insert("10101111", key="b")
        assert store.search("10101111").match_keys == ["a", "b"]
        store.delete("a")
        assert store.search("10101111").match_keys == ["b"]
        store.update("b", "0000XXXX")
        assert store.search("10101111").match_keys == []

    def test_batch_duplicates_computed_once(self, store_factory):
        store = store_factory(cache_size=8)
        store.insert("1010XXXX", key="a")
        results = store.search_batch(["10101111"] * 5)
        assert [r.match_keys for r in results] == [["a"]] * 5
        assert store.stats.array_searches == 1
        assert store.stats.cache_hits == 4
        assert sum(r.cached for r in results) == 4

    def test_cached_result_isolated_from_mutation(self, store_factory):
        store = store_factory(cache_size=8)
        store.insert("1010XXXX", key="a")
        store.search("10101111").matches.clear()  # caller misbehaves
        assert store.search("10101111").match_keys == ["a"]

    def test_use_cache_false_bypasses(self, store_factory):
        store = store_factory(cache_size=8)
        store.insert("1010XXXX", key="a")
        store.search("10101111")
        result = store.search("10101111", use_cache=False)
        assert not result.cached and result.energy > 0
