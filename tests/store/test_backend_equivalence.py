"""Property tests: the two store backends are interchangeable.

The headline guarantee of `fecam.store`: an :class:`ArrayBackend` and a
one-bank :class:`FabricBackend` serve the same workload with
*bit-identical* matches, energy, latency, and array counters; a
multi-bank fabric still returns the identical matches in the identical
priority order (and — because every row's step-1/step-2 behavior is
independent of which bank holds it — the same total energy and
latency).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

# Example depth comes from the settings profile registered in
# tests/conftest.py (HYPOTHESIS_PROFILE=ci|dev|nightly): deep locally,
# bounded on CI, exhaustive nightly.

from fecam.designs import DesignKind
from fecam.functional import EnergyModel
from fecam.store import ArrayBackend, CamStore, FabricBackend, StoreConfig

WIDTH = 10


def fast_model():
    return EnergyModel(DesignKind.DG_1T5, WIDTH, e_1step_per_bit=0.8e-15,
                       e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                       latency_2step=2.3e-9, write_energy_per_cell=0.4e-15)


def build_store(backend, banks, words, priorities, cache_size=0):
    store = CamStore(StoreConfig(
        width=WIDTH, rows=max(len(words), 1) * banks, banks=banks,
        backend=backend, cache_size=cache_size,
        energy_model=fast_model()))
    if words:
        store.insert_many(words, keys=list(range(len(words))),
                          priorities=priorities)
    return store


words_strategy = st.lists(
    st.text(alphabet="01X", min_size=WIDTH, max_size=WIDTH),
    min_size=0, max_size=12)
queries_strategy = st.lists(
    st.text(alphabet="01", min_size=WIDTH, max_size=WIDTH),
    min_size=1, max_size=16)


@settings(deadline=None)
@given(words=words_strategy, queries=queries_strategy, data=st.data())
def test_array_and_one_bank_fabric_are_bit_identical(words, queries, data):
    priorities = data.draw(st.lists(
        st.integers(min_value=0, max_value=5), min_size=len(words),
        max_size=len(words)))
    array = build_store("array", 1, words, priorities)
    fabric = build_store("fabric", 1, words, priorities)
    assert isinstance(array.backend, ArrayBackend)
    assert isinstance(fabric.backend, FabricBackend)

    array_results = array.search_batch(queries)
    fabric_results = fabric.search_batch(queries)
    for lhs, rhs in zip(array_results, fabric_results):
        assert lhs.match_keys == rhs.match_keys
        assert [m.row for m in lhs.matches] == \
            [m.row for m in rhs.matches]
        assert lhs.energy == rhs.energy      # bit-identical, not approx
        assert lhs.latency == rhs.latency

    # The arrays themselves did identical work: same counters, same
    # cumulative energy (writes + searches), bit for bit.
    array_cam = array.backend.cam
    fabric_cam = fabric.backend.fabric.banks[0].cam
    assert array_cam.search_count == fabric_cam.search_count
    assert array_cam.write_count == fabric_cam.write_count
    assert array_cam.energy_spent == fabric_cam.energy_spent
    assert array.stats.energy_total == fabric.stats.energy_total


@settings(deadline=None)
@given(words=words_strategy, queries=queries_strategy,
       banks=st.integers(min_value=2, max_value=4))
def test_multibank_fabric_matches_array(words, queries, banks):
    """Sharding must be invisible: same matches in the same global
    priority order, same per-query energy and latency (row work is
    bank-placement-independent)."""
    priorities = list(range(len(words)))
    array = build_store("array", 1, words, priorities)
    fabric = build_store("fabric", banks, words, priorities)

    for lhs, rhs in zip(array.search_batch(queries),
                        fabric.search_batch(queries)):
        assert lhs.match_keys == rhs.match_keys
        assert lhs.energy == pytest.approx(rhs.energy, rel=1e-12)
        assert lhs.latency == rhs.latency


@settings(deadline=None)
@given(words=st.lists(st.text(alphabet="01X", min_size=WIDTH,
                              max_size=WIDTH), min_size=1, max_size=8),
       queries=queries_strategy)
def test_equivalence_survives_caching(words, queries):
    """With equal cache configs, both backends serve the same hits and
    the same results."""
    priorities = list(range(len(words)))
    array = build_store("array", 1, words, priorities, cache_size=8)
    fabric = build_store("fabric", 1, words, priorities, cache_size=8)
    for _ in range(2):  # second pass is cache-served
        for lhs, rhs in zip(array.search_batch(queries),
                            fabric.search_batch(queries)):
            assert lhs.match_keys == rhs.match_keys
            assert lhs.cached == rhs.cached
            assert lhs.energy == rhs.energy
    assert array.stats.cache_hits == fabric.stats.cache_hits
    assert array.stats.array_searches == fabric.stats.array_searches


def test_deletion_and_update_keep_backends_aligned():
    words = ["1010101010", "0101010101", "11111XXXXX", "XXXXX00000"]
    stores = [build_store(kind, b, words, list(range(4)))
              for kind, b in (("array", 1), ("fabric", 1))]
    for store in stores:
        store.delete(1)
        store.update(2, "11111X1X1X")
        store.insert("0101010101", key="replacement", priority=1)
    lhs, rhs = (s.search_batch(["1111111111", "0101010101"])
                for s in stores)
    for a, b in zip(lhs, rhs):
        assert a.match_keys == b.match_keys
        assert [m.row for m in a.matches] == [m.row for m in b.matches]
        assert a.energy == b.energy and a.latency == b.latency
