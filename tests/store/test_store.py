"""Tests for the `fecam.store` associative-store API: config
resolution, the result model, backend injection, and reprs.

The per-backend write/erase/update/search/search_batch/stats/cache
battery lives in ``tests/store/test_backend_conformance.py``, which
runs one shared suite over ``ArrayBackend``, ``FabricBackend(banks=1)``,
and ``FabricBackend(banks=4)`` — add backend behavior tests there, not
here."""

import pytest

from fecam.designs import DesignKind
from fecam.errors import OperationError, TernaryValueError
from fecam.functional import EnergyModel, TernaryCAM
from fecam.store import (ArrayBackend, CamStore, FabricBackend, Match,
                         Query, QueryResult, StoreConfig, make_backend)


def fast_model(width):
    """Explicit figures of merit: no circuit evaluation in unit tests."""
    return EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=0.8e-15,
                       e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                       latency_2step=2.3e-9, write_energy_per_cell=0.4e-15)


class TestStoreConfig:
    def test_validation(self):
        with pytest.raises(OperationError):
            StoreConfig(banks=0)
        with pytest.raises(OperationError):
            StoreConfig(cache_size=-1)
        with pytest.raises(OperationError):
            StoreConfig(backend="gpu")
        with pytest.raises(OperationError):
            StoreConfig(placement="random")
        with pytest.raises(OperationError):
            StoreConfig(backend="array", banks=4)
        with pytest.raises(OperationError):
            StoreConfig(width=0)
        with pytest.raises(OperationError):
            StoreConfig(rows=0)

    def test_auto_backend_resolution(self):
        assert StoreConfig(banks=1).backend_kind == "array"
        assert StoreConfig(banks=4).backend_kind == "fabric"
        assert StoreConfig(banks=1, backend="fabric").backend_kind == \
            "fabric"

    def test_resolved_fills_missing_only(self):
        config = StoreConfig(width=16).resolved(width=8, rows=32)
        assert config.width == 16  # explicit value wins
        assert config.rows == 32
        with pytest.raises(OperationError):
            StoreConfig().resolved(width=8)  # rows still missing

    def test_rows_per_bank_rounds_up(self):
        assert StoreConfig(rows=10, banks=4).rows_per_bank == 3

    def test_factory_picks_backend(self):
        array = make_backend(StoreConfig(width=8, rows=4))
        fabric = make_backend(StoreConfig(width=8, rows=4, banks=2))
        assert isinstance(array, ArrayBackend)
        assert isinstance(fabric, FabricBackend)


class TestQueryModel:
    def test_coerce(self):
        q = Query.coerce("1010")
        assert q == Query(bits="1010", mask=None)
        assert Query.coerce(q) is q
        with pytest.raises(TernaryValueError):
            Query.coerce(1010)

    def test_result_helpers(self):
        m = Match(key="k", word="10", priority=0, bank=0, row=0)
        result = QueryResult(query=Query("10"), matches=[m])
        assert result.best is m
        assert result.match_keys == ["k"]
        assert len(result) == 1
        empty = QueryResult(query=Query("10"))
        assert empty.best is None and bool(empty)


class TestBackendInjection:
    def test_adopted_cam_preserves_content(self):
        cam = TernaryCAM(rows=4, width=8, energy_model=fast_model(8))
        cam.write(1, "1010XXXX")
        backend = ArrayBackend(
            StoreConfig(width=8, rows=4,
                        energy_model=fast_model(8)), cam=cam)
        store = CamStore(backend=backend)
        assert len(store) == 1
        assert store.search_first("10101111").key == 1
        store.insert("0101XXXX", key="new")  # rows 0/2/3 still free
        assert store.search("01011111").match_keys == ["new"]

    def test_backend_plus_config_rejected(self):
        config = StoreConfig(width=8, rows=4)
        backend = make_backend(config.resolved())
        with pytest.raises(OperationError):
            CamStore(config, backend=backend)

    def test_sparse_adopted_cam_never_outranked_by_new_inserts(self):
        cam = TernaryCAM(rows=8, width=8, energy_model=fast_model(8))
        cam.write(0, "XXXXXXXX")
        cam.write(5, "XXXXXXXX")  # sparse: occupancy 2, max seq 5
        backend = ArrayBackend(
            StoreConfig(width=8, rows=8,
                        energy_model=fast_model(8)), cam=cam)
        store = CamStore(backend=backend)
        fresh = store.insert("XXXXXXXX", key="fresh")
        # Fresh entries sort strictly after every adopted row: no
        # priority collision, no outranking of adopted row 5.
        assert fresh.priority > 5 and fresh.seq > 5
        assert store.search("11111111").match_keys == [0, 5, "fresh"]

    def test_geometry_conflicts_rejected_at_construction(self):
        from fecam.apps import SeedIndex, TcamCache, TcamRouter

        with pytest.raises(OperationError):
            StoreConfig(width=16).with_geometry(width=32, rows=4)
        with pytest.raises(OperationError):
            StoreConfig(rows=99).with_geometry(width=32, rows=4)
        with pytest.raises(OperationError):
            TcamCache(lines=2, block_bits=4, address_bits=16,
                      store_config=StoreConfig(width=16))
        with pytest.raises(OperationError):
            SeedIndex("ACGTACGT", k=4,
                      store_config=StoreConfig(width=32))
        router = TcamRouter(capacity=4,
                            store_config=StoreConfig(width=16))
        router.add_route("10.0.0.0/8", "hop")
        with pytest.raises(OperationError) as excinfo:
            router.lookup("10.1.1.1")  # rebuild applies the geometry
        assert "width" in str(excinfo.value)


class TestContainersAndReprs:
    def test_ternary_cam_contains(self):
        cam = TernaryCAM(rows=4, width=8, energy_model=fast_model(8))
        cam.write(0, "1010XXXX")
        assert "1010XXXX" in cam
        assert "1010**??" in cam       # alias forms normalize
        assert "10101111" not in cam   # a query that matches != stored
        assert "1010" not in cam       # wrong width
        assert "10Z0XXXX" not in cam   # un-normalizable
        assert 1234 not in cam
        cam.erase(0)
        assert "1010XXXX" not in cam

    def test_ternary_cam_repr(self):
        cam = TernaryCAM(rows=4, width=8, energy_model=fast_model(8))
        cam.write(0, "1010XXXX")
        text = repr(cam)
        assert "4x8" in text and "1/4" in text and \
            str(DesignKind.DG_1T5) in text

    def test_fabric_repr(self):
        from fecam.fabric import TcamFabric

        fabric = TcamFabric(banks=2, rows_per_bank=4, width=8,
                            energy_model=fast_model(8), cache_size=8)
        fabric.insert("1010XXXX", key="a")
        text = repr(fabric)
        assert "banks=2" in text and "1/8" in text and "cache=" in text
        assert str(DesignKind.DG_1T5) in text
        assert "a" in fabric and len(fabric) == 1


class TestPackWordsErrors:
    def test_length_error_names_word_index(self):
        from fecam.functional import pack_words

        with pytest.raises(TernaryValueError) as excinfo:
            pack_words(["1010", "101", "1111"], 4)
        assert "word 1" in str(excinfo.value)

    def test_symbol_error_names_word_and_position(self):
        from fecam.functional import pack_words

        with pytest.raises(TernaryValueError) as excinfo:
            pack_words(["1010", "10Z0"], 4)
        message = str(excinfo.value)
        assert "word 1" in message and "'Z'" in message and \
            "position 2" in message

    def test_non_ascii_error_names_word_index(self):
        from fecam.functional import pack_words

        with pytest.raises(TernaryValueError) as excinfo:
            pack_words(["1010", "10é0"], 4)
        assert "word 1" in str(excinfo.value)
