"""Tests for the `fecam.store` associative-store API: config
resolution, CamStore lifecycle/search/caching, and the result model."""

import pytest

from fecam.designs import DesignKind
from fecam.errors import OperationError, TernaryValueError
from fecam.functional import EnergyModel, TernaryCAM
from fecam.store import (ArrayBackend, CamStore, FabricBackend, Match,
                         Query, QueryResult, StoreConfig, make_backend)


def fast_model(width):
    """Explicit figures of merit: no circuit evaluation in unit tests."""
    return EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=0.8e-15,
                       e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                       latency_2step=2.3e-9, write_energy_per_cell=0.4e-15)


def make_store(width=8, rows=8, **kw):
    kw.setdefault("energy_model", fast_model(width))
    return CamStore(StoreConfig(width=width, rows=rows, **kw))


class TestStoreConfig:
    def test_validation(self):
        with pytest.raises(OperationError):
            StoreConfig(banks=0)
        with pytest.raises(OperationError):
            StoreConfig(cache_size=-1)
        with pytest.raises(OperationError):
            StoreConfig(backend="gpu")
        with pytest.raises(OperationError):
            StoreConfig(placement="random")
        with pytest.raises(OperationError):
            StoreConfig(backend="array", banks=4)
        with pytest.raises(OperationError):
            StoreConfig(width=0)
        with pytest.raises(OperationError):
            StoreConfig(rows=0)

    def test_auto_backend_resolution(self):
        assert StoreConfig(banks=1).backend_kind == "array"
        assert StoreConfig(banks=4).backend_kind == "fabric"
        assert StoreConfig(banks=1, backend="fabric").backend_kind == \
            "fabric"

    def test_resolved_fills_missing_only(self):
        config = StoreConfig(width=16).resolved(width=8, rows=32)
        assert config.width == 16  # explicit value wins
        assert config.rows == 32
        with pytest.raises(OperationError):
            StoreConfig().resolved(width=8)  # rows still missing

    def test_rows_per_bank_rounds_up(self):
        assert StoreConfig(rows=10, banks=4).rows_per_bank == 3

    def test_factory_picks_backend(self):
        array = make_backend(StoreConfig(width=8, rows=4))
        fabric = make_backend(StoreConfig(width=8, rows=4, banks=2))
        assert isinstance(array, ArrayBackend)
        assert isinstance(fabric, FabricBackend)


class TestQueryModel:
    def test_coerce(self):
        q = Query.coerce("1010")
        assert q == Query(bits="1010", mask=None)
        assert Query.coerce(q) is q
        with pytest.raises(TernaryValueError):
            Query.coerce(1010)

    def test_result_helpers(self):
        m = Match(key="k", word="10", priority=0, bank=0, row=0)
        result = QueryResult(query=Query("10"), matches=[m])
        assert result.best is m
        assert result.match_keys == ["k"]
        assert len(result) == 1
        empty = QueryResult(query=Query("10"))
        assert empty.best is None and bool(empty)


@pytest.mark.parametrize("kw", [dict(), dict(banks=3)],
                         ids=["array", "fabric"])
class TestCamStoreLifecycle:
    def test_insert_search_delete_update(self, kw):
        store = make_store(**kw)
        store.insert("1010XXXX", key="a")
        store.insert("10101111", key="b")
        assert store.search("10101111").match_keys == ["a", "b"]
        assert store.search_first("10101010").key == "a"
        store.delete("b")
        assert "b" not in store and "a" in store
        assert store.search("10101111").match_keys == ["a"]
        store.update("a", "0000XXXX")
        assert store.search("10101111").match_keys == []
        assert store.search("00001111").match_keys == ["a"]

    def test_priority_order_overrides_insertion(self, kw):
        store = make_store(**kw)
        store.insert("XXXXXXXX", key="low", priority=10)
        store.insert("XXXXXXXX", key="high", priority=1)
        assert store.search("11110000").match_keys == ["high", "low"]
        assert [m.key for m in store.entries()] == ["high", "low"]

    def test_auto_keys_are_unique(self, kw):
        store = make_store(**kw)
        m1 = store.insert("1111XXXX")
        m2 = store.insert("1111XXXX")
        assert m1.key != m2.key
        assert len(store) == 2

    def test_bulk_insert_fills_none_keys_with_unique_autos(self, kw):
        store = make_store(**kw)
        matches = store.insert_many(
            ["1111XXXX", "0000XXXX", "1010XXXX"], keys=[None, "b", None])
        assert matches[1].key == "b"
        assert matches[0].key != matches[2].key
        assert len(store) == 3

    def test_duplicate_key_rejected(self, kw):
        store = make_store(**kw)
        store.insert("1111XXXX", key="k")
        with pytest.raises(OperationError):
            store.insert("0000XXXX", key="k")
        with pytest.raises(OperationError):
            store.insert_many(["0000XXXX"], keys=["k"])
        with pytest.raises(OperationError):
            store.insert_many(["0000XXXX", "1111XXXX"], keys=["x", "x"])

    def test_insert_many_matches_scalar_loop(self, kw):
        bulk = make_store(rows=16, **kw)
        loop = make_store(rows=16, **kw)
        words = ["1010XXXX", "0101XXXX", "11110000", "XXXXXXXX"]
        bulk.insert_many(words, keys=list("abcd"), payloads=[1, 2, 3, 4])
        for key, payload, word in zip("abcd", [1, 2, 3, 4], words):
            loop.insert(word, key=key, payload=payload)
        for query in ("10101111", "01010000", "11110000"):
            lhs, rhs = bulk.search(query), loop.search(query)
            assert lhs.match_keys == rhs.match_keys
            assert lhs.energy == rhs.energy
            assert lhs.latency == rhs.latency

    def test_bad_word_in_bulk_insert_is_atomic(self, kw):
        store = make_store(**kw)
        with pytest.raises(TernaryValueError) as excinfo:
            store.insert_many(["1010XXXX", "10Z0XXXX"], keys=["a", "b"])
        assert "word 1" in str(excinfo.value)
        assert len(store) == 0 and "a" not in store

    def test_alias_words_normalized(self, kw):
        store = make_store(**kw)
        store.insert("1010**??", key="a")
        assert store.get("a").word == "1010XXXX"
        store.insert_many(["0101****"], keys=["b"])
        assert store.get("b").word == "0101XXXX"

    def test_capacity_enforced(self, kw):
        store = make_store(rows=3, **kw)
        # Fabric capacity may round up to banks * rows_per_bank.
        for i in range(store.capacity):
            store.insert("11111111", key=i)
        with pytest.raises(OperationError):
            store.insert("1010XXXX")
        with pytest.raises(OperationError):
            make_store(rows=1, **kw).insert_many(
                ["11111111"] * 8, keys=list(range(8)))

    def test_mask_excludes_positions(self, kw):
        store = make_store(**kw)
        store.insert("11110000", key="a")
        assert store.search("11110011").match_keys == []
        masked = store.search("11110011", mask="11111100")
        assert masked.match_keys == ["a"]
        assert store.search(Query("11110011",
                                  mask="11111100")).match_keys == ["a"]

    def test_mixed_masks_in_batch_rejected(self, kw):
        store = make_store(**kw)
        with pytest.raises(OperationError):
            store.search_batch([Query("11110000", mask="11111100"),
                                Query("11110000", mask="00111111")])
        # A masked Query must not leak its mask onto an unmasked
        # neighbour (which sequential semantics would search unmasked).
        with pytest.raises(OperationError):
            store.search_batch([Query("11110000", mask="11111100"),
                                "11110000"])
        with pytest.raises(OperationError):
            store.search_batch([Query("11110000", mask="11111100")],
                               mask="00111111")
        # Agreeing masks are fine.
        store.insert("11110000", key="a")
        results = store.search_batch(
            [Query("11110011", mask="11111100"), "11110011"],
            mask="11111100")
        assert [r.match_keys for r in results] == [["a"], ["a"]]

    def test_search_batch_matches_scalar_loop(self, kw):
        store = make_store(rows=16, **kw)
        store.insert_many(["1010XXXX", "0101XXXX", "10101111"],
                          keys=list("abc"))
        queries = ["10101111", "01011111", "10101111", "00000000"]
        batched = store.search_batch(queries, use_cache=False)
        scalars = [store.search(q, use_cache=False) for q in queries]
        assert [r.match_keys for r in batched] == \
            [r.match_keys for r in scalars]
        assert [r.energy for r in batched] == [r.energy for r in scalars]
        assert [r.latency for r in batched] == \
            [r.latency for r in scalars]
        assert store.search_batch([]) == []

    def test_stats_and_repr(self, kw):
        store = make_store(**kw)
        store.insert("1111XXXX", key="a")
        store.search("11111111")
        stats = store.stats
        assert stats.occupancy == 1 and stats.capacity >= 8
        assert stats.searches == 1 and stats.array_searches == 1
        assert stats.writes == 1
        assert stats.energy_total > 0
        assert stats.worst_latency > 0
        assert stats.backend == store.backend.name
        text = repr(store)
        assert store.backend.name in text and \
            f"1/{store.capacity}" in text

    def test_payload_roundtrip(self, kw):
        store = make_store(**kw)
        store.insert("1111XXXX", key="a", payload={"hop": 3})
        assert store.search_first("11111111").payload == {"hop": 3}
        store.update("a", "1111XXXX", payload={"hop": 4})
        assert store.get("a").payload == {"hop": 4}


@pytest.mark.parametrize("kw", [dict(), dict(banks=3)],
                         ids=["array", "fabric"])
class TestCamStoreCache:
    def test_cache_hits_cost_nothing(self, kw):
        store = make_store(cache_size=8, **kw)
        store.insert("1010XXXX", key="a")
        first = store.search("10101111")
        energy = store.stats.energy_total
        assert not first.cached
        again = store.search("10101111")
        assert again.cached and again.energy == 0.0 and \
            again.latency == 0.0
        assert again.match_keys == first.match_keys
        assert store.stats.energy_total == energy  # no array fired
        assert store.stats.cache_hits == 1
        assert store.stats.array_searches == 1
        assert store.stats.searches == 2

    def test_any_write_invalidates(self, kw):
        store = make_store(cache_size=8, **kw)
        store.insert("1010XXXX", key="a")
        assert store.search("10101111").match_keys == ["a"]
        store.insert("10101111", key="b")
        assert store.search("10101111").match_keys == ["a", "b"]
        store.delete("a")
        assert store.search("10101111").match_keys == ["b"]
        store.update("b", "0000XXXX")
        assert store.search("10101111").match_keys == []

    def test_batch_duplicates_computed_once(self, kw):
        store = make_store(cache_size=8, **kw)
        store.insert("1010XXXX", key="a")
        results = store.search_batch(["10101111"] * 5)
        assert [r.match_keys for r in results] == [["a"]] * 5
        assert store.stats.array_searches == 1
        assert store.stats.cache_hits == 4
        assert sum(r.cached for r in results) == 4

    def test_cached_result_isolated_from_mutation(self, kw):
        store = make_store(cache_size=8, **kw)
        store.insert("1010XXXX", key="a")
        store.search("10101111").matches.clear()  # caller misbehaves
        assert store.search("10101111").match_keys == ["a"]

    def test_use_cache_false_bypasses(self, kw):
        store = make_store(cache_size=8, **kw)
        store.insert("1010XXXX", key="a")
        store.search("10101111")
        result = store.search("10101111", use_cache=False)
        assert not result.cached and result.energy > 0


class TestBackendInjection:
    def test_adopted_cam_preserves_content(self):
        cam = TernaryCAM(rows=4, width=8, energy_model=fast_model(8))
        cam.write(1, "1010XXXX")
        backend = ArrayBackend(
            StoreConfig(width=8, rows=4,
                        energy_model=fast_model(8)), cam=cam)
        store = CamStore(backend=backend)
        assert len(store) == 1
        assert store.search_first("10101111").key == 1
        store.insert("0101XXXX", key="new")  # rows 0/2/3 still free
        assert store.search("01011111").match_keys == ["new"]

    def test_backend_plus_config_rejected(self):
        config = StoreConfig(width=8, rows=4)
        backend = make_backend(config.resolved())
        with pytest.raises(OperationError):
            CamStore(config, backend=backend)

    def test_sparse_adopted_cam_never_outranked_by_new_inserts(self):
        cam = TernaryCAM(rows=8, width=8, energy_model=fast_model(8))
        cam.write(0, "XXXXXXXX")
        cam.write(5, "XXXXXXXX")  # sparse: occupancy 2, max seq 5
        backend = ArrayBackend(
            StoreConfig(width=8, rows=8,
                        energy_model=fast_model(8)), cam=cam)
        store = CamStore(backend=backend)
        fresh = store.insert("XXXXXXXX", key="fresh")
        # Fresh entries sort strictly after every adopted row: no
        # priority collision, no outranking of adopted row 5.
        assert fresh.priority > 5 and fresh.seq > 5
        assert store.search("11111111").match_keys == [0, 5, "fresh"]

    def test_geometry_conflicts_rejected_at_construction(self):
        from fecam.apps import SeedIndex, TcamCache, TcamRouter

        with pytest.raises(OperationError):
            StoreConfig(width=16).with_geometry(width=32, rows=4)
        with pytest.raises(OperationError):
            StoreConfig(rows=99).with_geometry(width=32, rows=4)
        with pytest.raises(OperationError):
            TcamCache(lines=2, block_bits=4, address_bits=16,
                      store_config=StoreConfig(width=16))
        with pytest.raises(OperationError):
            SeedIndex("ACGTACGT", k=4,
                      store_config=StoreConfig(width=32))
        router = TcamRouter(capacity=4,
                            store_config=StoreConfig(width=16))
        router.add_route("10.0.0.0/8", "hop")
        with pytest.raises(OperationError) as excinfo:
            router.lookup("10.1.1.1")  # rebuild applies the geometry
        assert "width" in str(excinfo.value)


class TestContainersAndReprs:
    def test_ternary_cam_contains(self):
        cam = TernaryCAM(rows=4, width=8, energy_model=fast_model(8))
        cam.write(0, "1010XXXX")
        assert "1010XXXX" in cam
        assert "1010**??" in cam       # alias forms normalize
        assert "10101111" not in cam   # a query that matches != stored
        assert "1010" not in cam       # wrong width
        assert "10Z0XXXX" not in cam   # un-normalizable
        assert 1234 not in cam
        cam.erase(0)
        assert "1010XXXX" not in cam

    def test_ternary_cam_repr(self):
        cam = TernaryCAM(rows=4, width=8, energy_model=fast_model(8))
        cam.write(0, "1010XXXX")
        text = repr(cam)
        assert "4x8" in text and "1/4" in text and \
            str(DesignKind.DG_1T5) in text

    def test_fabric_repr(self):
        from fecam.fabric import TcamFabric

        fabric = TcamFabric(banks=2, rows_per_bank=4, width=8,
                            energy_model=fast_model(8), cache_size=8)
        fabric.insert("1010XXXX", key="a")
        text = repr(fabric)
        assert "banks=2" in text and "1/8" in text and "cache=" in text
        assert str(DesignKind.DG_1T5) in text
        assert "a" in fabric and len(fabric) == 1


class TestPackWordsErrors:
    def test_length_error_names_word_index(self):
        from fecam.functional import pack_words

        with pytest.raises(TernaryValueError) as excinfo:
            pack_words(["1010", "101", "1111"], 4)
        assert "word 1" in str(excinfo.value)

    def test_symbol_error_names_word_and_position(self):
        from fecam.functional import pack_words

        with pytest.raises(TernaryValueError) as excinfo:
            pack_words(["1010", "10Z0"], 4)
        message = str(excinfo.value)
        assert "word 1" in message and "'Z'" in message and \
            "position 2" in message

    def test_non_ascii_error_names_word_index(self):
        from fecam.functional import pack_words

        with pytest.raises(TernaryValueError) as excinfo:
            pack_words(["1010", "10é0"], 4)
        assert "word 1" in str(excinfo.value)
