"""Tests for the endurance/retention reliability models."""

import math

import pytest

from fecam.designs import DesignKind
from fecam.devices import EnduranceModel, RetentionModel, reliability_report
from fecam.errors import CalibrationError, OperationError

YEAR = 365.25 * 24 * 3600.0


class TestEndurance:
    def test_paper_anchor_points(self):
        """DG ±2 V writes reach the 1e10 level [18]; ±4 V thick-stack
        writes are orders of magnitude worse (the paper's Sec. I claim)."""
        m = EnduranceModel()
        assert m.cycles_to_failure(2.0) == pytest.approx(1e10, rel=0.01)
        assert m.cycles_to_failure(4.0) == pytest.approx(1e6, rel=0.01)

    def test_lower_voltage_always_better(self):
        m = EnduranceModel()
        cycles = [m.cycles_to_failure(v) for v in (1.6, 2.0, 3.2, 4.0)]
        assert all(a > b for a, b in zip(cycles, cycles[1:]))

    def test_degradation_monotone_and_bounded(self):
        m = EnduranceModel()
        losses = [m.mw_degradation(n, 2.0) for n in (0, 1e3, 1e6, 1e9, 1e10)]
        assert losses[0] == 0.0
        assert all(b >= a for a, b in zip(losses, losses[1:]))
        assert m.mw_degradation(1e10, 2.0) == pytest.approx(0.25, rel=0.05)
        assert m.mw_degradation(1e30, 2.0) <= 1.0

    def test_lifetime_years(self):
        m = EnduranceModel()
        # 1e10 cycles at 100 writes/s ~ 3.2 years.
        assert m.lifetime_years(2.0, 100.0) == pytest.approx(
            1e10 / 100.0 / YEAR, rel=1e-6)

    def test_validation(self):
        m = EnduranceModel()
        with pytest.raises(OperationError):
            m.cycles_to_failure(0.0)
        with pytest.raises(OperationError):
            m.mw_degradation(-1, 2.0)
        with pytest.raises(OperationError):
            m.lifetime_years(2.0, 0.0)

    def test_polarity_independent(self):
        """Write stress depends on |V|: a -2 V pulse ages like +2 V."""
        m = EnduranceModel()
        assert m.cycles_to_failure(-2.0) == m.cycles_to_failure(2.0)

    def test_sub_cycle_counts_cost_nothing(self):
        assert EnduranceModel().mw_degradation(0.5, 2.0) == 0.0


class TestRetention:
    def test_full_states_retain_decade(self):
        r = RetentionModel()
        s10y = r.fraction_after(1.0, 10 * YEAR)
        assert s10y > 0.65  # still clearly LVT after the rated decade

    def test_mvt_decays_faster(self):
        r = RetentionModel()
        t = 2 * YEAR
        loss_full = 1.0 - r.fraction_after(1.0, t)
        loss_mvt = abs(r.fraction_after(0.6, t) - 0.6)
        # Normalize by distance to the depolarized endpoint.
        assert loss_mvt / 0.1 > loss_full / 0.5

    def test_depolarized_is_stationary(self):
        r = RetentionModel()
        assert r.fraction_after(0.5, 100 * YEAR) == pytest.approx(0.5)

    def test_vth_drift_scales_with_memory_window(self):
        r = RetentionModel()
        drift_sg = r.vth_drift_after(DesignKind.SG_1T5, 1.0, YEAR)
        drift_dg = r.vth_drift_after(DesignKind.DG_1T5, 1.0, YEAR)
        # Same fractional loss, but the SG window is 2x the DG FG window.
        assert drift_sg == pytest.approx(2.0 * drift_dg, rel=0.01)

    def test_validation(self):
        r = RetentionModel()
        with pytest.raises(CalibrationError):
            r.tau(1.5)
        with pytest.raises(OperationError):
            r.fraction_after(1.0, -1.0)


class TestReport:
    def test_dg_beats_sg_endurance(self):
        sg = reliability_report(DesignKind.SG_2FEFET)
        dg = reliability_report(DesignKind.DG_1T5)
        assert dg["cycles_to_failure"] > 1e3 * sg["cycles_to_failure"]

    def test_x_state_drift_reported_for_1t5(self):
        r = reliability_report(DesignKind.DG_1T5)
        assert r["retention_vth_drift_x_v"] is not None
        assert r["retention_vth_drift_x_v"] >= 0
        r2 = reliability_report(DesignKind.DG_2FEFET)
        assert r2["retention_vth_drift_x_v"] is None

    def test_cmos_rejected(self):
        with pytest.raises(OperationError):
            reliability_report(DesignKind.CMOS_16T)

    def test_report_knobs_flow_through(self):
        slow = reliability_report(DesignKind.DG_1T5,
                                  writes_per_second=1.0)
        fast = reliability_report(DesignKind.DG_1T5,
                                  writes_per_second=1000.0)
        assert slow["lifetime_years_at_rate"] == pytest.approx(
            1000.0 * fast["lifetime_years_at_rate"], rel=1e-9)
        short = reliability_report(DesignKind.DG_1T5, retention_years=1.0)
        long = reliability_report(DesignKind.DG_1T5, retention_years=10.0)
        assert long["retention_vth_drift_lvt_v"] > \
            short["retention_vth_drift_lvt_v"]

    def test_tau_interpolates_between_floor_and_full(self):
        r = RetentionModel()
        assert r.tau(1.0) == pytest.approx(r.tau_full)
        assert r.tau(0.0) == pytest.approx(r.tau_full)
        assert r.tau(0.5) == pytest.approx(r.tau_full / r.mvt_penalty)
        assert r.tau(0.0) > r.tau(0.25) > r.tau(0.5)
