"""Tests for the SG/DG FeFET compact model (paper Fig. 1 facts)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fecam.designs import DesignKind
from fecam.devices import (FeFet, dg_fefet_params, make_fefet, s_to_state,
                           sg_fefet_params, state_to_s)
from fecam.errors import CalibrationError
from fecam.spice import (Capacitor, Circuit, Pulse, Resistor,
                         TransientOptions, VoltageSource, transient)


def dg(s=0.0, name="FDG"):
    return FeFet(name, "fg", "d", "s", "bg", params=dg_fefet_params(), initial_s=s)


def sg(s=0.0, name="FSG"):
    return FeFet(name, "fg", "d", "s", "bg", params=sg_fefet_params(), initial_s=s)


class TestStateMapping:
    def test_state_to_s(self):
        assert state_to_s("HVT") == 0.0
        assert state_to_s("LVT") == 1.0
        assert state_to_s("MVT", s_mvt=0.76) == 0.76

    def test_unknown_state(self):
        with pytest.raises(CalibrationError):
            state_to_s("XVT")

    def test_s_to_state_roundtrip(self):
        for state in ("HVT", "MVT", "LVT"):
            assert s_to_state(state_to_s(state, 0.7), 0.7) == state

    def test_set_state_updates_vth(self):
        f = dg()
        f.set_state("LVT")
        vth_lvt = f.vth
        f.set_state("HVT")
        assert f.vth - vth_lvt == pytest.approx(f.params.mw_fg)

    def test_bad_fraction_rejected(self):
        with pytest.raises(CalibrationError):
            dg().set_fraction(1.2)


class TestMemoryWindows:
    """The four device-level facts of paper Fig. 1."""

    def test_sg_fg_memory_window_is_1p8(self):
        p = sg_fefet_params()
        assert p.vth_eff(0.0) - p.vth_eff(1.0) == pytest.approx(1.8)

    def test_dg_bg_memory_window_is_2p7(self):
        p = dg_fefet_params()
        assert p.vth_bg(0.0) - p.vth_bg(1.0) == pytest.approx(2.7)

    def test_dg_fg_window_smaller_than_bg(self):
        p = dg_fefet_params()
        assert p.mw_fg < p.mw_bg

    def test_bg_read_degrades_subthreshold_slope(self):
        p = dg_fefet_params()
        assert p.subthreshold_swing_bg == pytest.approx(
            p.subthreshold_swing_fg / p.k_bg)
        assert p.subthreshold_swing_bg > 2.5 * p.subthreshold_swing_fg

    def test_fe_thickness_matches_paper(self):
        assert sg_fefet_params().ferro.t_fe == pytest.approx(10e-9)
        assert dg_fefet_params().ferro.t_fe == pytest.approx(5e-9)

    def test_on_off_ratio_at_shared_level(self):
        # Sec. III-B4: ~1e4-level ON/OFF at the co-optimized 2.0 V.
        i_on = dg(1.0).channel_current(0.0, 0.8, 0.0, 2.0)
        i_off = dg(0.0).channel_current(0.0, 0.8, 0.0, 2.0)
        assert 1e3 < i_on / i_off < 1e7
        assert i_on > 1e-6

    def test_sg_read_separates_states(self):
        i_lvt = sg(1.0).channel_current(0.8, 0.8, 0.0, 0.0)
        i_hvt = sg(0.0).channel_current(0.8, 0.8, 0.0, 0.0)
        assert i_lvt / i_hvt > 1e3

    def test_bg_threshold_shifts_with_fg_bias(self):
        # The Vb trick of Tab. II: a small FG bias lowers the BG-referred VT.
        p = dg_fefet_params()
        assert p.vth_bg(1.0, v_fg_bias=0.25) < p.vth_bg(1.0, v_fg_bias=0.0)

    def test_sg_has_no_bg(self):
        p = sg_fefet_params()
        assert math.isnan(p.mw_bg)
        assert math.isnan(p.vth_bg(1.0))
        # BG voltage must not influence the SG channel.
        f = sg(1.0)
        assert f.channel_current(0.8, 0.8, 0.0, 0.0) == pytest.approx(
            f.channel_current(0.8, 0.8, 0.0, 2.0))


class TestIVCurves:
    def test_dg_bg_sweep_monotonic(self):
        f = dg(1.0)
        curr = [f.channel_current(0.0, 0.8, 0.0, v) for v in np.linspace(-1, 4, 26)]
        assert all(b >= a - 1e-15 for a, b in zip(curr, curr[1:]))

    def test_leakage_floor_visible(self):
        # Deep-off current is the floor, not the ideal exponential.
        i = dg(0.0).channel_current(0.0, 0.8, 0.0, -1.0)
        assert i == pytest.approx(1e-10, rel=0.2)

    def test_jacobian_matches_numeric(self):
        f = dg(0.76)
        for bias in [(0.25, 0.8, 0.3, 2.0), (0.0, 0.4, 0.0, 2.0),
                     (0.8, 0.8, 0.0, 0.0), (2.0, 0.0, 0.0, 0.0)]:
            vfg, vd, vs, vbg = bias
            ids, g_fg, g_d, g_s, g_bg = f._ids_and_derivs(vfg, vd, vs, vbg)
            d = 1e-7
            assert g_fg == pytest.approx(
                (f._ids_and_derivs(vfg + d, vd, vs, vbg)[0] - ids) / d,
                rel=1e-3, abs=1e-12)
            assert g_d == pytest.approx(
                (f._ids_and_derivs(vfg, vd + d, vs, vbg)[0] - ids) / d,
                rel=1e-3, abs=1e-12)
            assert g_s == pytest.approx(
                (f._ids_and_derivs(vfg, vd, vs + d, vbg)[0] - ids) / d,
                rel=1e-3, abs=1e-12)
            assert g_bg == pytest.approx(
                (f._ids_and_derivs(vfg, vd, vs, vbg + d)[0] - ids) / d,
                rel=1e-3, abs=1e-12)

    def test_read_resistance_ordering(self):
        """R_ON(LVT) < R(MVT) < R_OFF(HVT) at the DG search bias (Eq. 1)."""
        s_x = 0.76
        r_on = dg(1.0).read_resistance(0.0, 2.0, 0.4)
        r_m = dg(s_x).read_resistance(0.0, 2.0, 0.4)
        r_off = dg(0.0).read_resistance(0.0, 2.0, 0.4)
        assert r_on < r_m < r_off
        assert r_off / r_on > 1e3


class TestWriteTransient:
    """Electrical writes through the spice engine."""

    def _write_circuit(self, fefet, v_pulse, width=10e-9):
        ckt = Circuit("write")
        ckt.add(VoltageSource("VBL", "fg", "0",
                              Pulse(0.0, v_pulse, delay=1e-9, rise=0.5e-9,
                                    fall=0.5e-9, width=width)))
        # Source/drain/BG grounded through the write path (Tab. II: write
        # config keeps channel terminals at ground).
        ckt.add(Resistor("RD", "d", "0", 100.0))
        ckt.add(Resistor("RS", "s", "0", 100.0))
        ckt.add(VoltageSource("VBG", "bg", "0", 0.0))
        ckt.add(fefet)
        return ckt

    def test_positive_write_sets_lvt(self):
        f = dg(0.0)
        ckt = self._write_circuit(f, +2.0)
        transient(ckt, 13e-9, options=TransientOptions(dt=0.1e-9))
        assert f.s > 0.95
        assert f.state(0.76) == "LVT"

    def test_negative_write_sets_hvt(self):
        f = dg(1.0)
        ckt = self._write_circuit(f, -2.0)
        transient(ckt, 13e-9, options=TransientOptions(dt=0.1e-9))
        assert f.s < 0.05

    def test_vm_write_lands_midway(self):
        f = dg(0.0)
        ckt = self._write_circuit(f, +1.6, width=19.3e-9)
        transient(ckt, 22e-9, options=TransientOptions(dt=0.2e-9))
        assert 0.55 < f.s < 0.9

    def test_half_voltage_does_not_disturb(self):
        # Array write inhibit: unselected cells see at most Vw/2.
        f = dg(0.0)
        ckt = self._write_circuit(f, +1.0)
        transient(ckt, 13e-9, options=TransientOptions(dt=0.1e-9))
        assert f.s < 0.01

    def test_write_energy_near_2PrAVw(self):
        # The BL source must supply the polarization switching charge:
        # E ~= 2*Pr*A*Vw (+ small CV^2) ~= 0.4 fJ for the DG write.
        f = dg(0.0)
        ckt = self._write_circuit(f, +2.0)
        result = transient(ckt, 13e-9, options=TransientOptions(dt=0.05e-9))
        e_bl = result.energy("VBL")
        q_pol = 2 * f.params.ferro.ps * f.params.ferro.area
        assert e_bl == pytest.approx(q_pol * 2.0, rel=0.35)

    def test_sg_write_at_4v(self):
        f = sg(0.0)
        ckt = self._write_circuit(f, +4.0)
        transient(ckt, 13e-9, options=TransientOptions(dt=0.1e-9))
        assert f.s > 0.95


class TestReadDisturb:
    def test_sg_accumulates_disturb(self):
        f = sg(0.0)  # HVT cell read many times
        s_after = f.apply_read_disturb(n_reads=1_000_000)
        assert s_after > 0.15  # material drift after 1M reads

    def test_dg_is_disturb_free(self):
        f = dg(0.0)
        assert f.apply_read_disturb(n_reads=10_000_000) == 0.0

    def test_disturb_direction(self):
        f = sg(1.0)
        f.apply_read_disturb(n_reads=1000, direction=-1.0)
        assert f.layer.s < 1.0

    def test_disturb_is_monotone_in_reads(self):
        f1, f2 = sg(0.0), sg(0.0)
        a = f1.apply_read_disturb(n_reads=1000)
        b = f2.apply_read_disturb(n_reads=100000)
        assert b > a


@settings(max_examples=30, deadline=None)
@given(s=st.floats(min_value=0.0, max_value=1.0),
       vbg=st.floats(min_value=0.0, max_value=4.0))
def test_current_monotone_in_polarization(s, vbg):
    """Property: more 'up' polarization never decreases the read current."""
    lo = dg(max(0.0, s - 0.1)).channel_current(0.0, 0.8, 0.0, vbg)
    hi = dg(min(1.0, s + 0.1)).channel_current(0.0, 0.8, 0.0, vbg)
    assert hi >= lo - 1e-15
