"""Tests locking the calibration to the paper's device-level targets."""

import pytest

from fecam.designs import DesignKind
from fecam.devices import (VDD, cell_sizing, dg_fefet_params, fefet_params_for,
                           make_fefet, nmos, operating_voltages, pmos,
                           sg_fefet_params)
from fecam.errors import CalibrationError


class TestOperatingVoltages:
    def test_dg_write_voltage_is_2v(self):
        v = operating_voltages(DesignKind.DG_1T5)
        assert v.vw == pytest.approx(2.0)
        assert v.vm == pytest.approx(1.6)

    def test_sg_write_voltage_is_4v(self):
        v = operating_voltages(DesignKind.SG_1T5)
        assert v.vw == pytest.approx(4.0)
        assert v.vm == pytest.approx(3.2)

    def test_dg_select_level_shares_hv_driver(self):
        # Sec. III-B4: LVT write voltage == BG read voltage == 2.0 V, the
        # co-optimization that enables the shared driver of Fig. 6.
        v = operating_voltages(DesignKind.DG_1T5)
        assert v.vsel == pytest.approx(2.0)
        assert v.shares_hv_level

    def test_sg_select_is_logic_level(self):
        v = operating_voltages(DesignKind.SG_1T5)
        assert v.vsel == pytest.approx(0.8)
        assert not v.shares_hv_level

    def test_dg_search_bias_vb(self):
        assert operating_voltages(DesignKind.DG_1T5).vb == pytest.approx(0.25)

    def test_vdd(self):
        assert operating_voltages(DesignKind.DG_1T5).vdd == pytest.approx(VDD)

    def test_2fefet_designs_share_flavour_voltages(self):
        assert operating_voltages(DesignKind.DG_2FEFET) == operating_voltages(
            DesignKind.DG_1T5)
        assert operating_voltages(DesignKind.SG_2FEFET) == operating_voltages(
            DesignKind.SG_1T5)

    def test_cmos_has_no_fefet_voltages(self):
        with pytest.raises(CalibrationError):
            operating_voltages(DesignKind.CMOS_16T)


class TestDesignKind:
    def test_fefet_counts(self):
        assert DesignKind.SG_2FEFET.fefets_per_cell == 2
        assert DesignKind.DG_1T5.fefets_per_cell == 1
        assert DesignKind.CMOS_16T.fefets_per_cell == 0

    def test_two_step_search_only_for_1t5(self):
        assert DesignKind.DG_1T5.uses_two_step_search
        assert DesignKind.SG_1T5.uses_two_step_search
        assert not DesignKind.DG_2FEFET.uses_two_step_search

    def test_double_gate_flags(self):
        assert DesignKind.DG_2FEFET.is_double_gate
        assert not DesignKind.SG_1T5.is_double_gate

    def test_fefet_designs_tuple(self):
        assert len(DesignKind.fefet_designs()) == 4
        assert DesignKind.CMOS_16T not in DesignKind.fefet_designs()

    def test_str(self):
        assert str(DesignKind.DG_1T5) == "1.5T1DG-Fe"


class TestFlavourSelection:
    def test_fefet_params_for_design(self):
        assert fefet_params_for(DesignKind.DG_1T5).is_double_gate
        assert fefet_params_for(DesignKind.DG_2FEFET).is_double_gate
        assert not fefet_params_for(DesignKind.SG_1T5).is_double_gate

    def test_cmos_rejected(self):
        with pytest.raises(CalibrationError):
            fefet_params_for(DesignKind.CMOS_16T)

    def test_make_fefet_applies_flavour(self):
        f = make_fefet(DesignKind.DG_1T5, "F", "fg", "d", "s", "bg")
        assert f.params.is_double_gate
        assert f.s == 0.0


class TestDividerMargins:
    """DC operating-point margins of the 1.5T1Fe voltage divider (Eq. 1-3).

    These are the conditions the numeric co-optimization froze into
    cell_sizing(); regressions here mean the TCAM truth tables will break.
    """

    @staticmethod
    def _solve_search0(design, s, leak=0.0):
        volts = operating_voltages(design)
        sz = cell_sizing(design)
        tn = nmos("TN", "a", "g", "b", w=sz.tn_w, l=sz.tn_l, vth=sz.tn_vth)
        fef = make_fefet(design, "F", "fg", "d", "s", "bg", initial_s=s)
        vfg = volts.vb if design.is_double_gate else volts.vsel
        vbg = volts.vsel if design.is_double_gate else 0.0
        lo, hi = 0.0, VDD
        for _ in range(60):
            vs = 0.5 * (lo + hi)
            i_fe = fef.channel_current(vfg, VDD, vs, vbg) + leak
            if i_fe > tn.channel_current(vs, VDD, 0.0, 0.0):
                lo = vs
            else:
                hi = vs
        return 0.5 * (lo + hi)

    @staticmethod
    def _solve_search1(design, s, leak=0.0):
        volts = operating_voltages(design)
        sz = cell_sizing(design)
        tp = pmos("TP", "a", "g", "b", w=sz.tp_w, l=sz.tp_l, vth=sz.tp_vth)
        fef = make_fefet(design, "F", "fg", "d", "s", "bg", initial_s=s)
        vfg = 0.0 if design.is_double_gate else volts.vsel
        vbg = volts.vsel if design.is_double_gate else 0.0
        lo, hi = 0.0, VDD
        for _ in range(60):
            vd = 0.5 * (lo + hi)
            i_up = -tp.channel_current(vd, 0.0, VDD, VDD)
            if i_up > fef.channel_current(vfg, vd, 0.0, vbg) + leak:
                lo = vd
            else:
                hi = vd
        return 0.5 * (lo + hi)

    @pytest.mark.parametrize("design", [DesignKind.DG_1T5, DesignKind.SG_1T5])
    def test_mismatch_levels_exceed_tml_threshold(self, design):
        sz = cell_sizing(design)
        v_s0_store1 = self._solve_search0(design, 1.0)
        v_s1_store0 = self._solve_search1(design, 0.0)
        assert v_s0_store1 > sz.tml_vth + 0.10
        assert v_s1_store0 > sz.tml_vth + 0.10

    @pytest.mark.parametrize("design", [DesignKind.DG_1T5, DesignKind.SG_1T5])
    def test_match_levels_below_tml_threshold(self, design):
        sz = cell_sizing(design)
        for v in (self._solve_search0(design, 0.0),
                  self._solve_search0(design, sz.s_x),
                  self._solve_search1(design, 1.0),
                  self._solve_search1(design, sz.s_x)):
            assert v < sz.tml_vth - 0.05

    @pytest.mark.parametrize("design", [DesignKind.DG_1T5, DesignKind.SG_1T5])
    def test_eq1_operative_ordering(self, design):
        """Paper Eq. 1 (R_ON < R_N < R_M < R_P << R_OFF), stated operatively.

        The compact devices are non-ohmic, so a single-probe resistance
        comparison mixes triode and saturation regimes; what Eq. 1 *means*
        for correct search is a set of current-capability orderings at the
        TML decision level, which we assert directly:

        search '0' (divider VDD -R_FE- SL_bar -R_N- gnd, Eq. 2):
          * LVT out-drives TN at the TML threshold (mismatch detected);
          * the MVT 'X' device cannot (don't-care holds).
        search '1' (divider VDD -R_P- SL_bar -R_FE- gnd, Eq. 3):
          * TP out-drives HVT leakage (mismatch detected);
          * LVT and MVT out-sink TP below the TML threshold (match holds).
        """
        volts = operating_voltages(design)
        sz = cell_sizing(design)
        t = sz.tml_vth
        vfg0 = volts.vb if design.is_double_gate else volts.vsel
        vfg1 = 0.0 if design.is_double_gate else volts.vsel
        vbg = volts.vsel if design.is_double_gate else 0.0

        def fefet_with(s):
            return make_fefet(design, f"F{s}", "f", "d", "s", "b", initial_s=s)

        tn = nmos("TN", "a", "g", "b", w=sz.tn_w, l=sz.tn_l, vth=sz.tn_vth)
        tp = pmos("TP", "a", "g", "b", w=sz.tp_w, l=sz.tp_l, vth=sz.tp_vth)
        i_tn_at = lambda v: tn.channel_current(v, VDD, 0.0, 0.0)
        i_tp_at = lambda v: -tp.channel_current(v, 0.0, VDD, VDD)

        # search '0': FeFET sources from SL (VDD) into SL_bar at level v.
        i_lvt_s0 = fefet_with(1.0).channel_current(vfg0, VDD, t, vbg)
        i_x_s0 = fefet_with(sz.s_x).channel_current(vfg0, VDD, t - 0.05, vbg)
        assert i_lvt_s0 > i_tn_at(t)  # R_ON < R_N
        assert i_x_s0 < i_tn_at(t - 0.05)  # R_N < R_M

        # search '1': FeFET sinks from SL_bar at level v into SL (gnd).
        i_x_s1 = fefet_with(sz.s_x).channel_current(vfg1, t - 0.05, 0.0, vbg)
        i_hvt_s1 = fefet_with(0.0).channel_current(vfg1, t, 0.0, vbg)
        assert i_x_s1 > i_tp_at(t - 0.05)  # R_M < R_P
        assert i_hvt_s1 < 0.2 * i_tp_at(t)  # R_P << R_OFF

        # Classic ohmic-regime spot checks where both devices are in triode.
        r_on = fefet_with(1.0).read_resistance(vfg0, vbg, 0.05)
        r_n = 0.05 / i_tn_at(0.05)
        r_off = fefet_with(0.0).read_resistance(vfg1, vbg, 0.4)
        assert r_on < r_n
        assert r_off > 1e8

    def test_unselected_cell_leak_is_small(self):
        # The pair-mate FeFET (BG off / FG grounded) must not corrupt the
        # divider: its current stays well under the TP transition current.
        for design in (DesignKind.DG_1T5, DesignKind.SG_1T5):
            volts = operating_voltages(design)
            sz = cell_sizing(design)
            vfg_unsel = volts.vb if design.is_double_gate else 0.0
            leak = make_fefet(design, "F", "f", "d", "s", "b", initial_s=1.0
                              ).channel_current(vfg_unsel, VDD, 0.0, 0.0)
            tp = pmos("TP", "a", "g", "b", w=sz.tp_w, l=sz.tp_l, vth=sz.tp_vth)
            i_tp = -tp.channel_current(0.2, 0.0, VDD, VDD)
            assert leak < 0.25 * i_tp


class TestCellSizing:
    def test_only_for_1t5_designs(self):
        with pytest.raises(CalibrationError):
            cell_sizing(DesignKind.DG_2FEFET)

    def test_control_transistors_are_long(self):
        # "Relatively large TP and TN transistors are required" (Sec. V-B).
        for design in (DesignKind.DG_1T5, DesignKind.SG_1T5):
            sz = cell_sizing(design)
            assert sz.tn_l > 5 * 20e-9
            assert sz.tp_l > 5 * 20e-9

    def test_control_area_positive(self):
        assert cell_sizing(DesignKind.DG_1T5).control_area > 0


class TestFlavourReadCurrents:
    def test_sg_read_stronger_than_dg(self):
        """At their respective search biases the SG device out-drives the
        DG device — the root of the 2DG design's longer latency."""
        i_sg = make_fefet(DesignKind.SG_2FEFET, "F", "f", "d", "s", "b",
                          initial_s=1.0).channel_current(0.8, 0.8, 0.0, 0.0)
        i_dg = make_fefet(DesignKind.DG_2FEFET, "G", "f", "d", "s", "b",
                          initial_s=1.0).channel_current(0.0, 0.8, 0.0, 2.0)
        assert i_sg > 1.1 * i_dg
        assert i_dg > 1e-6
