"""Tests for the ferroelectric polarization model (KAI/NLS kinetics)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fecam.devices import FerroParams, FerroelectricLayer
from fecam.errors import CalibrationError

# Fields corresponding to the paper's write levels through a 5 nm layer
# with kappa = 0.85: E(2.0 V) = 3.4e8 V/m, E(1.6 V) = 2.72e8 V/m.
E_WRITE = 0.85 * 2.0 / 5e-9
E_VM = 0.85 * 1.6 / 5e-9
E_READ = 0.85 * 0.4 / 5e-9  # a typical read-level residual field


def layer(s=0.0):
    return FerroelectricLayer(FerroParams(t_fe=5e-9), s=s)


class TestKinetics:
    def test_tau_decreases_with_field(self):
        l = layer()
        taus = [l.tau(e) for e in np.linspace(1e8, 5e8, 9)]
        assert all(b <= a for a, b in zip(taus, taus[1:]))

    def test_tau_infinite_at_zero_field(self):
        assert math.isinf(layer().tau(0.0))

    def test_write_field_switches_fast(self):
        assert layer().tau(E_WRITE) < 5e-9

    def test_read_field_is_frozen(self):
        # Read-level fields must not move polarization on any realistic
        # timescale (non-volatility / disturb-free DG read).
        assert layer().tau(E_READ) > 1e6  # over a week

    def test_intermediate_field_is_slow_but_finite(self):
        t = layer().tau(E_VM)
        assert 5e-9 < t < 100e-9

    def test_full_write_pulse_saturates(self):
        l = layer(s=0.0)
        l.advance(E_WRITE, 10e-9)
        assert l.s > 0.98

    def test_negative_write_erases(self):
        l = layer(s=1.0)
        l.advance(-E_WRITE, 10e-9)
        assert l.s < 0.02

    def test_vm_pulse_partially_switches(self):
        # The MVT programming pulse: lands mid-range, neither off nor full.
        l = layer(s=0.0)
        l.advance(E_VM, 10e-9)
        assert 0.3 < l.s < 0.75

    def test_preview_does_not_mutate(self):
        l = layer(s=0.0)
        preview = l.preview(E_WRITE, 10e-9)
        assert preview > 0.9
        assert l.s == 0.0

    def test_advance_composes_like_preview(self):
        l1 = layer(s=0.2)
        p = l1.preview(E_WRITE, 2e-9)
        l1.advance(E_WRITE, 2e-9)
        assert l1.s == pytest.approx(p)

    def test_two_half_pulses_equal_one_full(self):
        # Exact exponential update => exact composition at constant field.
        l1, l2 = layer(), layer()
        l1.advance(E_VM, 10e-9)
        l2.advance(E_VM, 5e-9)
        l2.advance(E_VM, 5e-9)
        assert l1.s == pytest.approx(l2.s, rel=1e-9)

    def test_zero_dt_is_identity(self):
        l = layer(s=0.37)
        l.advance(E_WRITE, 0.0)
        assert l.s == 0.37


class TestObservables:
    def test_polarization_range(self):
        p = FerroParams()
        assert FerroelectricLayer(p, s=0.0).polarization == pytest.approx(-p.ps)
        assert FerroelectricLayer(p, s=1.0).polarization == pytest.approx(p.ps)
        assert FerroelectricLayer(p, s=0.5).polarization == pytest.approx(0.0)

    def test_switching_charge(self):
        p = FerroParams()
        l = FerroelectricLayer(p)
        q_full = l.switching_charge(0.0, 1.0)
        assert q_full == pytest.approx(2 * p.ps * p.area)
        assert l.switching_charge(0.25, 0.75) == pytest.approx(q_full / 2)

    def test_charge_includes_linear_term(self):
        p = FerroParams()
        l = FerroelectricLayer(p, s=0.5)
        q0 = l.charge(0.0)
        q1 = l.charge(1.0)
        assert q1 - q0 == pytest.approx(p.c_static)

    def test_paper_write_energy_scale(self):
        # 2*Pr*A*Vw should be ~0.4 fJ at 2 V (Table IV, 1.5T1DG-Fe write).
        p = FerroParams()
        l = FerroelectricLayer(p)
        energy = l.switching_charge(0.0, 1.0) * 2.0
        assert energy == pytest.approx(0.41e-15, rel=0.05)

    def test_effective_coercive_field(self):
        l = layer()
        ec_10ns = l.effective_coercive_field(10e-9)
        # The coercive field for a 10 ns pulse sits between the Vm and Vw
        # fields — that is exactly what makes partial programming work.
        assert E_VM < ec_10ns < E_WRITE * 1.2
        # Longer pulses lower the apparent coercive field (NLS signature).
        assert l.effective_coercive_field(1e-6) < ec_10ns


class TestHysteresisLoop:
    def test_loop_is_hysteretic(self):
        l = layer(s=0.0)
        e, p = l.sweep_loop(e_peak=5e8, period=100e-9)
        e, p = np.asarray(e), np.asarray(p)
        # At zero crossing, the loop's two branches must differ (remanence).
        ups = p[np.abs(e) < 2e7]
        assert ups.max() - ups.min() > 0.5 * l.params.ps

    def test_loop_saturates_at_peaks(self):
        l = layer(s=0.0)
        e, p = l.sweep_loop(e_peak=6e8, period=200e-9)
        p = np.asarray(p)
        assert p.max() > 0.9 * l.params.ps
        assert p.min() < -0.9 * l.params.ps

    def test_loop_bounded_by_saturation(self):
        l = layer(s=0.3)
        _, p = l.sweep_loop(e_peak=8e8, period=50e-9)
        assert max(abs(x) for x in p) <= l.params.ps + 1e-12

    def test_fast_sweep_widens_loop(self):
        # Rate dependence: faster sweeps show a larger apparent coercive
        # field. Compare the positive-going zero-polarization crossing.
        def coercive(period):
            l = layer(s=1.0)
            e, p = l.sweep_loop(e_peak=6e8, period=period)
            e, p = np.asarray(e), np.asarray(p)
            # Find where p crosses 0 while e is rising in the last cycle.
            n = len(e) // 2
            for i in range(n, len(e) - 1):
                if p[i] < 0 <= p[i + 1] and e[i + 1] > e[i]:
                    return e[i]
            return None

        slow = coercive(1e-6)
        fast = coercive(50e-9)
        assert slow is not None and fast is not None
        assert fast > slow


class TestValidation:
    def test_bad_fraction(self):
        with pytest.raises(CalibrationError):
            FerroelectricLayer(FerroParams(), s=1.5)

    def test_bad_params(self):
        with pytest.raises(CalibrationError):
            FerroParams(ps=-0.1)
        with pytest.raises(CalibrationError):
            FerroParams(tau0=0.0)


@settings(max_examples=50, deadline=None)
@given(
    s0=st.floats(min_value=0.0, max_value=1.0),
    e=st.floats(min_value=-6e8, max_value=6e8),
    dt=st.floats(min_value=1e-12, max_value=1e-6),
)
def test_fraction_always_bounded(s0, e, dt):
    """Property: the domain fraction never leaves [0, 1]."""
    l = layer(s=s0)
    l.advance(e, dt)
    assert 0.0 <= l.s <= 1.0


@settings(max_examples=50, deadline=None)
@given(
    s0=st.floats(min_value=0.0, max_value=1.0),
    e=st.floats(min_value=1e7, max_value=6e8),
    dt=st.floats(min_value=1e-12, max_value=1e-3),
)
def test_positive_field_never_decreases_s(s0, e, dt):
    """Property: a positive field can only move polarization up."""
    l = layer(s=s0)
    l.advance(e, dt)
    assert l.s >= s0 - 1e-12
