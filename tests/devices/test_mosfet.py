"""Unit and property tests for the EKV MOSFET compact model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fecam.devices import Mosfet, MosfetParams, ekv_f, ekv_f_prime, nmos, pmos, softplus
from fecam.errors import CalibrationError
from fecam.spice import Circuit, Resistor, VoltageSource, operating_point
from fecam.units import thermal_voltage


class TestEkvHelpers:
    def test_softplus_limits(self):
        assert softplus(100.0) == pytest.approx(100.0)
        assert softplus(-100.0) == pytest.approx(0.0, abs=1e-20)
        assert softplus(0.0) == pytest.approx(math.log(2.0))

    def test_f_positive_and_increasing(self):
        us = np.linspace(-30, 30, 121)
        fs = [ekv_f(u) for u in us]
        assert all(f >= 0 for f in fs)
        assert all(b >= a for a, b in zip(fs, fs[1:]))

    def test_f_prime_matches_numeric(self):
        for u in (-10.0, -1.0, 0.0, 1.0, 10.0):
            d = 1e-6
            numeric = (ekv_f(u + d) - ekv_f(u - d)) / (2 * d)
            assert ekv_f_prime(u) == pytest.approx(numeric, rel=1e-5)

    def test_strong_inversion_quadratic(self):
        # F(u) -> (u/2)^2 for large u.
        assert ekv_f(40.0) == pytest.approx(400.0, rel=0.05)


class TestMosfetCurrents:
    def test_off_when_gate_low(self):
        m = nmos("M1", "d", "g", "s")
        assert m.channel_current(0.8, 0.0, 0.0) < 1e-9

    def test_on_when_gate_high(self):
        m = nmos("M1", "d", "g", "s")
        assert m.channel_current(0.8, 0.8, 0.0) > 1e-5

    def test_monotonic_in_vgs(self):
        m = nmos("M1", "d", "g", "s")
        currents = [m.channel_current(0.8, vg, 0.0)
                    for vg in np.linspace(0, 1.0, 21)]
        assert all(b >= a for a, b in zip(currents, currents[1:]))

    def test_monotonic_in_vds(self):
        m = nmos("M1", "d", "g", "s")
        currents = [m.channel_current(vd, 0.8, 0.0)
                    for vd in np.linspace(0, 0.8, 17)]
        assert all(b >= a for a, b in zip(currents, currents[1:]))

    def test_zero_vds_zero_current(self):
        m = nmos("M1", "d", "g", "s")
        assert m.channel_current(0.0, 0.8, 0.0) == pytest.approx(0.0, abs=1e-15)

    def test_reverse_conduction_antisymmetric(self):
        # Swapping source and drain flips the current sign (EKV symmetry).
        m = nmos("M1", "d", "g", "s")
        fwd = m.channel_current(0.4, 0.8, 0.0)
        rev = m.channel_current(0.0, 0.8, 0.4)
        assert fwd == pytest.approx(-rev, rel=1e-9)

    def test_subthreshold_slope(self):
        # I(vg) should change by 10x per n*Vt*ln(10) in weak inversion.
        m = nmos("M1", "d", "g", "s", vth=0.35)
        ss = m.params.subthreshold_swing
        i1 = m.channel_current(0.8, 0.10, 0.0)
        i2 = m.channel_current(0.8, 0.10 + ss, 0.0)
        assert i2 / i1 == pytest.approx(10.0, rel=0.05)

    def test_pmos_mirrors_nmos(self):
        n = nmos("M1", "d", "g", "s", w=80e-9)
        p = pmos("M2", "d", "g", "s", w=80e-9)
        i_n = n.channel_current(0.8, 0.8, 0.0)
        i_p = p.channel_current(-0.8, -0.8, 0.0)
        assert i_p < 0
        # PMOS has about half the per-width drive.
        assert abs(i_p) == pytest.approx(i_n * 1.4 / 3.0, rel=0.05)

    def test_multiplier_scales_current(self):
        m1 = nmos("M1", "d", "g", "s")
        m4 = nmos("M4", "d", "g", "s", multiplier=4.0)
        assert m4.channel_current(0.8, 0.8, 0.0) == pytest.approx(
            4.0 * m1.channel_current(0.8, 0.8, 0.0), rel=1e-12)

    def test_width_scales_current(self):
        m1 = nmos("M1", "d", "g", "s", w=40e-9)
        m2 = nmos("M2", "d", "g", "s", w=80e-9)
        assert m2.channel_current(0.8, 0.8, 0.0) == pytest.approx(
            2.0 * m1.channel_current(0.8, 0.8, 0.0), rel=1e-12)

    def test_on_resistance_reasonable(self):
        # 40 nm NMOS at full gate drive: a few kOhm to tens of kOhm.
        m = nmos("M1", "d", "g", "s")
        r = m.on_resistance(0.8)
        assert 1e3 < r < 1e5

    def test_drive_current_density(self):
        # ~0.5-1 mA/um at VDD — a 14 nm-class figure.
        m = nmos("M1", "d", "g", "s", w=100e-9)
        i = m.channel_current(0.8, 0.8, 0.0)
        density = i / 100e-9  # A/m
        assert 300 < density < 1500  # A/m == uA/um


class TestMosfetJacobian:
    @pytest.mark.parametrize("bias", [
        (0.8, 0.8, 0.0, 0.0), (0.4, 0.5, 0.1, 0.0),
        (0.05, 0.8, 0.0, 0.0), (0.8, 0.2, 0.0, 0.0),
        (0.3, 0.6, 0.3, 0.0),
    ])
    def test_analytic_derivatives_match_numeric(self, bias):
        m = nmos("M1", "d", "g", "s")
        vd, vg, vs, vb = bias
        ids, g_dd, g_dg, g_ds = m._ids_and_derivs(vd, vg, vs, vb)
        d = 1e-7
        num_dd = (m._ids_and_derivs(vd + d, vg, vs, vb)[0] - ids) / d
        num_dg = (m._ids_and_derivs(vd, vg + d, vs, vb)[0] - ids) / d
        num_ds = (m._ids_and_derivs(vd, vg, vs + d, vb)[0] - ids) / d
        assert g_dd == pytest.approx(num_dd, rel=1e-3, abs=1e-12)
        assert g_dg == pytest.approx(num_dg, rel=1e-3, abs=1e-12)
        assert g_ds == pytest.approx(num_ds, rel=1e-3, abs=1e-12)


class TestMosfetInCircuit:
    def test_nmos_pulldown_divider(self):
        # NMOS with gate at VDD pulls a resistor-loaded node low.
        ckt = Circuit("inv")
        ckt.add(VoltageSource("VDD", "vdd", "0", 0.8))
        ckt.add(Resistor("RL", "vdd", "out", 100e3))
        ckt.add(nmos("MN", "out", "vdd", "0"))
        op = operating_point(ckt)
        assert op.voltage("out") < 0.1

    def test_cmos_inverter_transfer(self):
        def inverter_out(v_in):
            ckt = Circuit("cmos-inv")
            ckt.add(VoltageSource("VDD", "vdd", "0", 0.8))
            ckt.add(VoltageSource("VIN", "in", "0", v_in))
            ckt.add(pmos("MP", "out", "in", "vdd"))
            ckt.add(nmos("MN", "out", "in", "0"))
            return operating_point(ckt).voltage("out")

        assert inverter_out(0.0) > 0.75
        assert inverter_out(0.8) < 0.05
        mid = inverter_out(0.4)
        assert 0.1 < mid < 0.7


class TestValidation:
    def test_bad_polarity(self):
        with pytest.raises(CalibrationError):
            MosfetParams(polarity=0, vth=0.3)

    def test_bad_geometry(self):
        with pytest.raises(CalibrationError):
            MosfetParams(polarity=1, vth=0.3, w=-1e-9)

    def test_bad_multiplier(self):
        with pytest.raises(CalibrationError):
            nmos("M", "d", "g", "s", multiplier=0.0)

    def test_bad_slope_factor(self):
        with pytest.raises(CalibrationError):
            MosfetParams(polarity=1, vth=0.3, n=0.9)


@settings(max_examples=40, deadline=None)
@given(
    vg=st.floats(min_value=0.0, max_value=1.2),
    vd=st.floats(min_value=0.0, max_value=1.2),
    vs=st.floats(min_value=0.0, max_value=0.4),
)
def test_current_sign_follows_vds(vg, vd, vs):
    """Property: current direction always matches the drain-source polarity."""
    m = nmos("M1", "d", "g", "s")
    i = m.channel_current(vd, vg, vs)
    if vd > vs + 1e-9:
        assert i >= -1e-15
    elif vd < vs - 1e-9:
        assert i <= 1e-15


@settings(max_examples=40, deadline=None)
@given(vg=st.floats(min_value=-0.5, max_value=1.5))
def test_gate_leakage_free(vg):
    """Property: the gate never sources/sinks DC current (stamp symmetry)."""
    # Build a floating-gate-driver circuit: if the model injected DC gate
    # current, the 1 GOhm gate resistor would show a big voltage drop.
    ckt = Circuit("gate")
    ckt.add(VoltageSource("VG", "gdrv", "0", vg))
    ckt.add(Resistor("RG", "gdrv", "g", 1e9))
    ckt.add(VoltageSource("VD", "d", "0", 0.8))
    ckt.add(nmos("MN", "d", "g", "0"))
    op = operating_point(ckt)
    assert op.voltage("g") == pytest.approx(vg, abs=2e-3)
