"""ClusterService end-to-end: parity, routing, failure modes, telemetry.

Real worker processes throughout — every test spawns (or forks) the
pool, so this file is also the start-method compatibility gate CI runs
under both ``fork`` and ``spawn``.
"""

import os
import signal

import pytest

from fecam.cluster import ClusterBackend, ClusterService
from fecam.durable.crash import CrashPoint
from fecam.errors import (ClusterWriterFailed, OperationError, ServiceClosed,
                          SimulatedCrash, TernaryValueError,
                          WorkerUnavailable)
from fecam.obs import MetricsRegistry
from fecam.obs.adapters import instrument
from fecam.store import CamStore, Query

from cluster_utils import make_config

WORDS = ["1010XXXXXXXX", "10101111XXXX", "0101XXXXXXXX", "111100001111",
         "000011110000", "XXXXXXXXXXXX"]
KEYS = list("abcdef")
PROBES = ["101011111111", "010111110000", "111100001111", "000000000000"]


@pytest.fixture
def service(cluster_config):
    with ClusterService(config=cluster_config, workers=2) as service:
        yield service


def kill_worker(service, worker_id=0):
    handle = service.backend._handles[worker_id]
    pid = handle.process.pid
    os.kill(pid, signal.SIGKILL)
    handle.process.join(5)
    return pid


class TestServingParity:
    def test_results_match_a_plain_store_bit_for_bit(
            self, service, cluster_config):
        reference = CamStore(make_config())
        reference.insert_many(WORDS, keys=KEYS)
        service.insert_many(WORDS, keys=KEYS)
        for probe in PROBES:
            served = service.search(probe)
            expected = reference.search(probe, use_cache=False)
            assert served.match_keys == expected.match_keys
            assert [(m.bank, m.row) for m in served.result.matches] == \
                [(m.bank, m.row) for m in expected.matches]
            assert served.result.energy == expected.energy
            assert served.result.latency == expected.latency

    def test_search_many_matches_per_request_door(self, service):
        service.insert_many(WORDS, keys=KEYS)
        burst = service.search_many(PROBES)
        singles = [service.search(p) for p in PROBES]
        assert [r.match_keys for r in burst] == \
            [r.match_keys for r in singles]
        assert all(r.generation == singles[0].generation for r in burst)

    def test_generation_rides_every_result(self, service):
        service.insert(WORDS[0], key="a")
        first = service.search(PROBES[0])
        service.insert(WORDS[1], key="b")
        second = service.search(PROBES[0])
        assert second.generation == first.generation + 1
        assert second.generation == service.backend.generation_published
        assert second.generation == service.store.generation

    def test_masked_and_query_object_paths(self, service):
        service.insert("111100001111", key="m")
        assert service.search("111100000000").match_keys == []
        masked = service.search("111100000000",
                                mask="111111110000")
        assert masked.match_keys == ["m"]
        via_query = service.search(Query("111100000000",
                                         mask="111111110000"))
        assert via_query.match_keys == ["m"]
        burst = service.search_many(
            [Query("111100000000", mask="111111110000")])
        assert burst[0].match_keys == ["m"]

    def test_validation_errors_cross_the_process_boundary(self, service):
        with pytest.raises(TernaryValueError):
            service.search("10Z0")
        service.insert(WORDS[0], key="a")  # the pool still serves
        assert service.search(PROBES[0]).match_keys == ["a"]

    def test_submit_returns_future(self, service):
        service.insert(WORDS[0], key="a")
        futures = [service.submit(PROBES[0]) for _ in range(8)]
        for future in futures:
            assert future.result(timeout=10).match_keys == ["a"]

    def test_failed_validation_publishes_nothing(self, service):
        service.insert(WORDS[0], key="a")
        generation = service.backend.generation_published
        with pytest.raises(OperationError):
            service.insert(WORDS[1], key="a")  # duplicate key
        assert service.backend.generation_published == generation
        assert service.backend.arena.seq % 2 == 0  # window closed
        assert service.search(PROBES[0]).match_keys == ["a"]


class TestWorkerDeath:
    def test_killed_worker_respawns_transparently(self, service):
        service.insert_many(WORDS, keys=KEYS)
        before = service.search_many(PROBES)
        old_pid = kill_worker(service, 0)
        after = service.search_many(PROBES)
        assert [r.match_keys for r in after] == \
            [r.match_keys for r in before]
        stats = {t["worker_id"]: t for t in service.worker_stats()}
        assert stats[0]["restarts"] == 1 and stats[0]["alive"]
        assert stats[0]["pid"] != old_pid
        assert stats[1]["restarts"] == 0

    def test_respawn_false_rehashes_to_survivors(self, cluster_config):
        with ClusterService(config=cluster_config, workers=2,
                            respawn=False) as service:
            service.insert_many(WORDS, keys=KEYS)
            before = service.search_many(PROBES)
            kill_worker(service, 0)
            after = service.search_many(PROBES)
            assert [r.match_keys for r in after] == \
                [r.match_keys for r in before]
            assert service.backend.ring.nodes == [1]

    def test_all_workers_dead_without_respawn_raises_typed(
            self, cluster_config):
        with ClusterService(config=cluster_config, workers=1,
                            respawn=False) as service:
            service.insert(WORDS[0], key="a")
            kill_worker(service, 0)
            with pytest.raises(WorkerUnavailable):
                service.search_many(PROBES)


class TestWriterDeath:
    def test_writes_fail_fast_reads_keep_serving(self, service):
        service.insert_many(WORDS, keys=KEYS)
        service.backend.crash_point = CrashPoint("cluster.publish.before")
        with pytest.raises(SimulatedCrash):
            service.insert("000000000000", key="late")
        assert service.backend.writer_failed
        with pytest.raises(ClusterWriterFailed):
            service.insert("000000000000", key="later")
        # Reads still answer from the last published generation.
        result = service.search(PROBES[0])
        assert result.match_keys == ["a", "b", "f"]
        assert result.generation == service.backend.generation_published


class TestTelemetry:
    def test_stats_mirror_serving(self, service):
        service.insert_many(WORDS, keys=KEYS)
        service.search(PROBES[0])
        service.search_many(PROBES)
        stats = service.stats
        assert stats.submitted == 1 + len(PROBES)
        assert stats.served == 1 + len(PROBES)
        assert stats.writes == 1
        assert stats.direct == len(PROBES)
        assert stats.generation == 1
        assert stats.p50_latency > 0

    def test_worker_stats_split_the_load(self, service):
        service.insert_many(WORDS, keys=KEYS)
        service.search_many(PROBES * 8)
        telemetry = service.worker_stats()
        assert len(telemetry) == 2
        assert sum(t["searches"] for t in telemetry) == len(PROBES) * 8
        assert all(t["generation"] == 1 for t in telemetry)
        assert all(t["occupancy"] == len(WORDS) for t in telemetry)

    def test_energy_total_includes_worker_searches(self, service):
        service.insert_many(WORDS, keys=KEYS)
        write_only = service.store.stats.energy_total
        assert write_only > 0
        service.search_many(PROBES)
        assert service.store.stats.energy_total > write_only

    def test_obs_instrument_exports_per_worker_series(self, service):
        registry = MetricsRegistry()
        unregister = instrument(service, registry)
        service.insert_many(WORDS, keys=KEYS)
        service.search_many(PROBES)
        by_name = {s.name: s for s in registry.collect()}
        alive = by_name["fecam_cluster_worker_alive"]
        assert sorted(dict(sample.labels)["worker"]
                      for sample in alive.samples) == ["0", "1"]
        assert all(s.value == 1.0 for s in alive.samples)
        searches = by_name["fecam_cluster_worker_searches_total"]
        assert sum(s.value for s in searches.samples) == len(PROBES)
        assert by_name["fecam_cluster_writer_ok"].samples[0].value == 1.0
        assert by_name["fecam_cluster_workers"].samples[0].value == 2.0
        assert "fecam_service_served_total" in by_name
        assert "fecam_fabric_bank_occupancy" in by_name
        unregister()


class TestLifecycle:
    def test_close_is_idempotent_and_refuses_new_work(
            self, cluster_config):
        service = ClusterService(config=cluster_config, workers=2)
        service.insert(WORDS[0], key="a")
        assert service.close()
        assert service.close()
        with pytest.raises(ServiceClosed):
            service.search(PROBES[0])

    def test_adopted_store_is_not_closed_by_default(self, cluster_config):
        backend = ClusterBackend(cluster_config, workers=1)
        try:
            store = CamStore(backend=backend)
            service = ClusterService(store)
            service.insert(WORDS[0], key="a")
            service.close()
            # The caller owns the backend: still serving.
            assert backend.search_batch(
                [PROBES[0]])[0].match_keys == ["a"]
        finally:
            backend.close()

    def test_non_fabric_config_rejected(self):
        with pytest.raises(OperationError):
            ClusterBackend(make_config(banks=1, backend="array"),
                           workers=1)

    def test_start_method_round_trips(self, cluster_config):
        method = service_method = None
        with ClusterService(config=cluster_config, workers=1) as service:
            service_method = service.backend.start_method
            service.insert(WORDS[0], key="a")
            assert service.search(PROBES[0]).match_keys == ["a"]
        import multiprocessing
        assert service_method in multiprocessing.get_all_start_methods()
        with pytest.raises(OperationError):
            ClusterBackend(cluster_config, workers=1,
                           start_method="not-a-method")
        del method


class TestDurableRecoveryIntoCluster:
    def test_workers_observe_recovered_content(self, tmp_path):
        from fecam.durable import DurabilityConfig, DurableCamStore, recover
        directory = str(tmp_path / "wal")
        durable = DurableCamStore(
            make_config(),
            durability=DurabilityConfig(directory=directory, fsync="off"))
        durable.insert_many(WORDS, keys=KEYS)
        durable.delete("c")
        durable.update("a", "101011110000")
        durable.close()

        recovered = recover(directory)
        try:
            backend = ClusterBackend.from_store(recovered, workers=2)
        finally:
            recovered.close()
        try:
            for probe in PROBES:
                expected = recovered.search(probe, use_cache=False)
                got = backend.search_batch([probe])[0]
                assert got.match_keys == expected.match_keys
                assert [(m.bank, m.row) for m in got.matches] == \
                    [(m.bank, m.row) for m in expected.matches]
                assert got.energy == expected.energy
            assert backend.occupancy == len(recovered)
        finally:
            backend.close()
