"""Cluster-suite wiring.

Two shared pieces:

* the same load-bearing sanitizer fixture the service suite uses —
  under ``FECAM_SANITIZE=1`` every :class:`ClusterService` a test
  builds instruments itself, and any unlocked writer-side arena access
  fails the exact test that provoked it;
* a ``cluster_config`` factory producing the small fabric config every
  end-to-end test shards, with an explicit energy model (no circuit
  evaluation in unit tests) and no query cache (bit-identity checks
  compare energy/latency, and cache hits legitimately cost zero).

The worker start method follows ``FECAM_CLUSTER_START`` (CI runs the
whole suite once under ``fork`` and once under ``spawn``); locally the
platform default applies.
"""

import pytest

from fecam.analysis import sanitize

from cluster_utils import make_config


@pytest.fixture
def cluster_config():
    return make_config()


@pytest.fixture(autouse=True)
def assert_sanitizer_clean():
    if not sanitize.enabled():
        yield
        return
    sanitize.reset()
    yield
    violations = sanitize.violations()
    sanitize.reset()
    assert not violations, (
        "sanitizer violations during test:\n" + "\n".join(
            f"  [{v.kind}] {v.op} ({v.thread}): {v.message}"
            for v in violations))
