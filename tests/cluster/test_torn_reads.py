"""Seqlock torn-read fault injection.

The publish-window seams (``publish_hook`` and the
``cluster.publish.*`` :class:`CrashPoint` sites) stall or kill the
writer at the worst possible instant — *after* the planes mutated,
*before* the window closed — while a reader races it.  The contract
under test: a reader either waits out the window and observes the
fully published state, or (if the writer is dead and the window will
never close) fails with the typed :class:`WorkerUnavailable` — it
never returns a half-applied view.

Readers here are in-process :class:`Replica` instances attached to the
backend's arena: the identical code path a worker process runs, minus
the pipe — which makes the races deterministic enough to script with
events.  ``test_cluster_service.py`` covers the same seams through
real worker processes.
"""

import threading

import pytest

from fecam.cluster import ClusterBackend, Replica, SharedArena
from fecam.durable.crash import CrashPoint
from fecam.errors import SimulatedCrash, WorkerUnavailable

from cluster_utils import make_config

WORDS = ["1010XXXXXXXX", "10101111XXXX", "0101XXXXXXXX"]
PROBE = "101011111111"


@pytest.fixture
def backend(cluster_config):
    backend = ClusterBackend(cluster_config, workers=1)
    yield backend
    backend.close()


@pytest.fixture
def replica(backend):
    arena = SharedArena.attach(backend.arena.directory)
    yield Replica(arena, backend.config, read_timeout=5.0)
    arena.close()


def serve(replica, probe=PROBE, timeout=None):
    if timeout is not None:
        replica.read_timeout = timeout
    generation, matches, _, _ = replica.serve_search([probe], None)
    return generation, [key for key, *_ in matches[0]]


class TestStalledWriter:
    def test_reader_waits_out_an_open_window(self, backend, replica):
        """A read racing a mid-mutation writer returns the *new* state
        once the window closes — and only then."""
        backend.insert("1010XXXXXXXX", "a", 0.0, None, 0)
        in_window = threading.Event()
        release = threading.Event()

        def stall(site):
            if site == "cluster.publish.mid":
                in_window.set()
                assert release.wait(10)

        backend.publish_hook = stall
        writer = threading.Thread(
            target=backend.insert,
            args=("10101111XXXX", "b", 1.0, None, 1))
        writer.start()
        assert in_window.wait(10)
        # The window is open: the new row is (half-)applied but not
        # published.  A reader started now must block, not serve gen 1
        # content tagged gen 2 — prove it by releasing the writer from
        # a timer and checking the read spans the release.
        assert backend.arena.seq % 2 == 1
        timer = threading.Timer(0.1, release.set)
        timer.start()
        generation, keys = serve(replica)
        writer.join()
        timer.join()
        assert generation == 2
        assert keys == ["a", "b"]  # the fully published state

    def test_read_before_the_window_sees_the_old_state(
            self, backend, replica):
        backend.insert("1010XXXXXXXX", "a", 0.0, None, 0)
        generation, keys = serve(replica)
        assert generation == 1 and keys == ["a"]

    def test_publish_during_read_retries_with_fresh_caches(
            self, backend, replica):
        """A publish landing mid-read tears the attempt; the replica
        must bust its derived/step1 memos and retry — stale memos over
        new planes are exactly the silent-wrong-answer failure mode."""
        backend.insert("1010XXXXXXXX", "a", 0.0, None, 0)
        serve(replica)  # warm the replica's memos at generation 1
        fired = []
        real_refresh = replica._refresh

        def racing_refresh():
            generation = real_refresh()
            if not fired:
                fired.append(1)
                backend.insert("10101111XXXX", "b", 1.0, None, 1)
            return generation

        replica._refresh = racing_refresh
        generation, keys = serve(replica)
        assert generation == 2
        assert keys == ["a", "b"]


class TestDeadWriter:
    def test_wedged_window_turns_into_typed_timeout(
            self, backend, replica):
        """Writer killed inside the window: seq stays odd forever, and
        the reader's only correct answer is WorkerUnavailable."""
        backend.insert("1010XXXXXXXX", "a", 0.0, None, 0)
        backend.crash_point = CrashPoint("cluster.publish.mid")
        with pytest.raises(SimulatedCrash):
            backend.insert("10101111XXXX", "b", 1.0, None, 1)
        assert backend.writer_failed
        assert backend.arena.seq % 2 == 1  # wedged open
        with pytest.raises(WorkerUnavailable, match="never closed"):
            serve(replica, timeout=0.3)

    def test_crash_before_window_leaves_reads_serving(
            self, backend, replica):
        backend.insert("1010XXXXXXXX", "a", 0.0, None, 0)
        backend.crash_point = CrashPoint("cluster.publish.before")
        with pytest.raises(SimulatedCrash):
            backend.insert("10101111XXXX", "b", 1.0, None, 1)
        assert backend.arena.seq % 2 == 0  # never opened
        generation, keys = serve(replica)
        assert generation == 1 and keys == ["a"]

    def test_crash_after_publish_keeps_the_new_generation(
            self, backend, replica):
        backend.insert("1010XXXXXXXX", "a", 0.0, None, 0)
        backend.crash_point = CrashPoint("cluster.publish.after")
        with pytest.raises(SimulatedCrash):
            backend.insert("10101111XXXX", "b", 1.0, None, 1)
        assert backend.writer_failed
        assert backend.arena.seq % 2 == 0  # published, then died
        generation, keys = serve(replica)
        assert generation == 2 and keys == ["a", "b"]
