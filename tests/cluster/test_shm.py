"""SharedArena unit tests: the seqlock primitive under the cluster.

Everything here is single-host and mostly single-process on purpose —
the arena is an mmap file, so a second :meth:`SharedArena.attach` in
the *same* process exercises the identical code path a worker process
runs, deterministically.  The cross-process behaviour rides on top in
``test_cluster_service.py`` / ``test_cluster_stress.py``.
"""

import os
import threading
import time

import numpy as np
import pytest

from fecam.cluster import SharedArena, default_shm_dir
from fecam.errors import OperationError, WorkerUnavailable


@pytest.fixture
def arena(tmp_path):
    arena = SharedArena.create(rows=8, width=8, base_dir=str(tmp_path))
    yield arena
    arena.unlink()


class TestLayout:
    def test_create_then_attach_shares_geometry_and_bytes(
            self, arena, tmp_path):
        reader = SharedArena.attach(arena.directory)
        try:
            assert (reader.rows, reader.width, reader.n_chunks) == \
                (arena.rows, arena.width, arena.n_chunks)
            planes = arena.planes()
            view = reader.planes()
            planes.set_row(3, np.array([0b1010], dtype=np.uint64),
                           np.array([0xFF], dtype=np.uint64))
            # Same pages: the write is visible through the other
            # mapping with no copy and no flush.
            assert view.valid[3]
            assert view.value[3, 0] == planes.value[3, 0] == 0b1010
            assert view.care[3, 0] == planes.care[3, 0] == 0xFF
        finally:
            reader.close()

    def test_attach_times_out_on_missing_arena(self, tmp_path):
        with pytest.raises(WorkerUnavailable):
            SharedArena.attach(str(tmp_path / "nope"), timeout=0.1)

    def test_attach_waits_for_magic(self, arena):
        # Truncate the magic away: an attacher must poll, then give up
        # with the typed error instead of mapping half-initialized
        # geometry.
        header = arena._header
        magic = int(header[0])
        header[0] = 0
        with pytest.raises(WorkerUnavailable):
            SharedArena.attach(arena.directory, timeout=0.2)
        header[0] = magic
        reader = SharedArena.attach(arena.directory, timeout=0.2)
        reader.close()

    def test_bad_geometry_rejected(self, tmp_path):
        with pytest.raises(OperationError):
            SharedArena.create(rows=0, width=8, base_dir=str(tmp_path))

    def test_default_dir_prefers_tmpfs_when_present(self):
        d = default_shm_dir()
        assert os.path.isdir(d)
        if os.path.isdir("/dev/shm") and os.access("/dev/shm", os.W_OK):
            assert d == "/dev/shm"


class TestPublishProtocol:
    def test_window_brackets_seq_and_generation(self, arena):
        assert arena.seq == 0 and arena.generation == 0
        arena.begin_publish()
        assert arena.seq == 1  # odd: window open
        arena.end_publish(generation=7)
        assert arena.seq == 2 and arena.generation == 7

    def test_closing_without_generation_keeps_the_old_one(self, arena):
        arena.begin_publish()
        arena.end_publish(generation=3)
        arena.begin_publish()
        arena.end_publish()  # validation-failure path
        assert arena.generation == 3
        assert arena.seq % 2 == 0

    def test_double_begin_and_stray_end_rejected(self, arena):
        arena.begin_publish()
        with pytest.raises(OperationError):
            arena.begin_publish()
        arena.end_publish()
        with pytest.raises(OperationError):
            arena.end_publish()

    def test_meta_only_moves_inside_a_window(self, arena):
        with pytest.raises(OperationError):
            arena.write_meta(b"outside")
        arena.begin_publish()
        arena.write_meta(b"hello-placements")
        arena.end_publish(generation=1)
        assert arena.read_meta() == b"hello-placements"
        reader = SharedArena.attach(arena.directory)
        try:
            assert reader.read_meta() == b"hello-placements"
        finally:
            reader.close()


class TestReadConsistent:
    def test_plain_read_runs_once(self, arena):
        calls = []
        out = arena.read_consistent(lambda: calls.append(1) or 42)
        assert out == 42 and len(calls) == 1

    def test_read_blocks_while_window_open(self, arena):
        """A reader entering during a window waits for the close and
        then sees the fully published state — never the torn middle."""
        planes = arena.planes()
        one = np.array([0xFF], dtype=np.uint64)
        arena.begin_publish()
        planes.set_row(0, one, one)  # half-applied mutation

        def close_later():
            time.sleep(0.05)
            planes.set_row(1, one, one)
            arena.end_publish(generation=1)

        closer = threading.Thread(target=close_later)
        closer.start()
        observed = arena.read_consistent(
            lambda: (arena.generation, int(np.sum(arena.planes().valid))))
        closer.join()
        assert observed == (1, 2)  # both rows, published generation

    def test_torn_window_retries_and_busts_caches(self, arena):
        """seq moving mid-read discards the attempt, fires ``on_retry``
        (the replica's memo-bust hook), and re-runs ``fn``."""
        busted = []
        attempts = []

        def fn():
            attempts.append(1)
            if len(attempts) == 1:
                # A publish lands in the middle of the first attempt.
                arena.begin_publish()
                arena.end_publish(generation=1)
            return arena.generation

        out = arena.read_consistent(fn, on_retry=lambda: busted.append(1))
        assert out == 1
        assert len(attempts) == 2 and busted == [1]

    def test_exception_during_torn_window_is_swallowed(self, arena):
        attempts = []

        def fn():
            attempts.append(1)
            if len(attempts) == 1:
                arena.begin_publish()
                arena.end_publish(generation=1)
                raise ValueError("malformed half-applied content")
            return "ok"

        assert arena.read_consistent(fn) == "ok"

    def test_exception_with_stable_seq_propagates(self, arena):
        with pytest.raises(ValueError, match="real bug"):
            arena.read_consistent(lambda: (_ for _ in ()).throw(
                ValueError("real bug")))

    def test_wedged_window_times_out_typed(self, arena):
        """Writer died mid-publish (seq stuck odd): the reader must
        fail with the typed error, not return a torn view."""
        arena.begin_publish()
        with pytest.raises(WorkerUnavailable, match="never closed"):
            arena.read_consistent(lambda: 1, timeout=0.2)


class TestLifecycle:
    def test_close_is_idempotent_and_tolerates_live_planes(self, arena):
        view = arena.planes()  # keeps an ndarray export alive
        arena.close()
        arena.close()
        assert view.rows == 8  # pages live until the view dies

    def test_unlink_removes_the_directory(self, tmp_path):
        arena = SharedArena.create(rows=4, width=8,
                                   base_dir=str(tmp_path))
        directory = arena.directory
        assert os.path.isdir(directory)
        arena.unlink()
        assert not os.path.exists(directory)
        arena.unlink()  # idempotent
