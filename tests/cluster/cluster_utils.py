"""Shared helpers for the cluster suite (imported by test modules;
fixtures live in ``conftest.py``).

Every end-to-end test shards the same small fabric config with an
explicit energy model (no circuit evaluation in unit tests) and no
query cache — bit-identity checks compare energy/latency, and cache
hits legitimately report zero cost.
"""

from fecam.designs import DesignKind
from fecam.functional import EnergyModel
from fecam.store import StoreConfig

WIDTH = 12
ROWS = 64


def fast_model(width=WIDTH):
    return EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=0.8e-15,
                       e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                       latency_2step=2.3e-9, write_energy_per_cell=0.4e-15)


def make_config(width=WIDTH, rows=ROWS, banks=2, backend="fabric", **kw):
    return StoreConfig(backend=backend, width=width, rows=rows,
                       banks=banks, energy_model=fast_model(width), **kw)
