"""Worker-lifecycle hygiene: no leaked /dev/shm segments, ever.

Shared segments are files in a private ``fecam-cluster-*`` directory;
"no leak" means that directory is gone after ``close()``, after the
backend is garbage-collected without a close, and regardless of how
the workers died.  Each test points ``shm_dir`` at a pytest tmp dir so
the assertion is exact (the directory tree is empty afterwards) and
never races other tests' clusters.
"""

import gc
import os
import signal

import pytest

from fecam.cluster import ClusterBackend, ClusterService

from cluster_utils import make_config


def segments(base) -> list:
    return sorted(p.name for p in base.iterdir())


class TestBackendHygiene:
    def test_close_unlinks_the_segment(self, tmp_path):
        backend = ClusterBackend(make_config(), workers=2,
                                 shm_dir=str(tmp_path))
        assert len(segments(tmp_path)) == 1
        backend.close()
        assert segments(tmp_path) == []
        backend.close()  # idempotent

    def test_gc_without_close_unlinks_via_finalizer(self, tmp_path):
        backend = ClusterBackend(make_config(), workers=1,
                                 shm_dir=str(tmp_path))
        backend.insert("1010XXXXXXXX", "a", 0.0, None, 0)
        assert len(segments(tmp_path)) == 1
        del backend
        gc.collect()
        assert segments(tmp_path) == []

    def test_abnormal_worker_exit_leaves_no_segment_behind(
            self, tmp_path):
        """SIGKILLed workers can't run their own cleanup — the owner's
        unlink must still leave nothing, even mid-respawn."""
        backend = ClusterBackend(make_config(), workers=2,
                                 shm_dir=str(tmp_path))
        backend.insert("1010XXXXXXXX", "a", 0.0, None, 0)
        for handle in list(backend._handles.values()):
            os.kill(handle.process.pid, signal.SIGKILL)
            handle.process.join(5)
        backend.search_batch(["101011111111"])  # respawns the pool
        backend.close()
        assert segments(tmp_path) == []

    def test_every_worker_process_is_reaped_on_close(self, tmp_path):
        backend = ClusterBackend(make_config(), workers=2,
                                 shm_dir=str(tmp_path))
        procs = [h.process for h in backend._handles.values()]
        assert all(p.is_alive() for p in procs)
        backend.close()
        for proc in procs:
            proc.join(5)
        assert not any(p.is_alive() for p in procs)


class TestServiceHygiene:
    def test_service_close_unlinks_owned_backend(self, tmp_path):
        service = ClusterService(config=make_config(), workers=2,
                                 shm_dir=str(tmp_path))
        service.insert("1010XXXXXXXX", key="a")
        assert len(segments(tmp_path)) == 1
        service.close()
        assert segments(tmp_path) == []

    def test_context_manager_cleans_up_on_error(self, tmp_path):
        with pytest.raises(RuntimeError, match="boom"):
            with ClusterService(config=make_config(), workers=1,
                                shm_dir=str(tmp_path)) as service:
                service.insert("1010XXXXXXXX", key="a")
                raise RuntimeError("boom")
        assert segments(tmp_path) == []
