"""Cross-process snapshot isolation: the serial-replay storm, clustered.

The port of ``tests/service/test_service_stress.py`` to real process
boundaries.  Writer threads journal mutations through
``ClusterService.write`` (each store op publishes one seqlock window
and advances both the facade generation and the arena's published
generation in lockstep); reader threads hammer ``search`` and
``search_many``, whose answers come from **worker processes** over the
shared arena and carry the generation the worker observed under the
seqlock.

The oracle is unchanged: replay the journal prefix up to each observed
generation on a fresh single-process store and demand the concurrent
result be *bit-identical* — keys, words, (bank, row) placements,
energy, latency.  A torn cross-process read — a worker serving planes
from one window and metadata from another, or stale step-1 memos over
new planes — cannot survive this check.
"""

import random
import threading
import time

import pytest

from fecam.cluster import ClusterService
from fecam.store import CamStore

from cluster_utils import WIDTH, make_config

KEYSPACE = [f"k{i}" for i in range(40)]

#: Queries served before the storm to absorb worker-process boot time.
WARMUP = 4


def random_word(rng):
    return "".join(rng.choice("01X") for _ in range(WIDTH))


def random_query(rng):
    return "".join(rng.choice("01") for _ in range(WIDTH))


def apply_journaled_op(service, journal, base_generation, rng):
    """One random journaled mutation, atomic under the write lock.

    Identical to the single-process storm: the op resolves against
    live state inside the transaction and the resolved form is
    journaled in the same critical section, so journal index and
    write-generation advance in lockstep — and, for the cluster, so
    does the arena's published generation.
    """
    kind = rng.choice(("insert", "insert", "update", "delete", "bulk"))
    key = rng.choice(KEYSPACE)
    word = random_word(rng)

    def txn(store):
        if kind in ("insert", "update"):
            if key in store:
                store.update(key, word)
                journal.append(("update", key, word))
            else:
                store.insert(word, key=key)
                journal.append(("insert", key, word))
        elif kind == "delete":
            if key not in store:
                return  # no mutation, no generation bump, no journal
            store.delete(key)
            journal.append(("delete", key))
        else:
            keys = [k for k in rng.sample(KEYSPACE, 4) if k not in store]
            if not keys:
                return
            words = [random_word(rng) for _ in keys]
            store.insert_many(words, keys=keys)
            journal.append(("insert_many", tuple(keys), tuple(words)))
        assert store.generation == base_generation + len(journal)

    service.write(txn)


def apply_one(store, op):
    if op[0] == "insert":
        store.insert(op[2], key=op[1])
    elif op[0] == "update":
        store.update(op[1], op[2])
    elif op[0] == "delete":
        store.delete(op[1])
    else:
        store.insert_many(list(op[2]), keys=list(op[1]))


def assert_bit_identical(served, replayed):
    lhs, rhs = served.result, replayed
    assert lhs.match_keys == rhs.match_keys
    assert [m.word for m in lhs.matches] == [m.word for m in rhs.matches]
    assert [(m.bank, m.row) for m in lhs.matches] == \
        [(m.bank, m.row) for m in rhs.matches]
    assert lhs.energy == rhs.energy
    assert lhs.latency == rhs.latency


def run_storm(n_writers, n_readers, ops_per_writer, reads_per_reader,
              seed, workers=2, burst_readers=0, burst_size=8):
    """Run the cross-process storm; ≥2 worker processes serve reads."""
    rng = random.Random(seed)
    preload = [(f"seed{i}", random_word(rng)) for i in range(8)]
    journal = []  # append only inside write transactions
    observations = []
    observations_lock = threading.Lock()
    errors = []

    with ClusterService(config=make_config(), workers=workers,
                        max_batch=32) as service:
        service.insert_many([word for _, word in preload],
                            keys=[key for key, _ in preload])
        # Warm the pool before the storm: under ``spawn`` a worker
        # takes ~a second to boot, and reads queued behind that boot
        # would all observe the final generation (no interleaving left
        # to test).
        service.search_many([random_query(rng) for _ in range(WARMUP)])
        base_generation = service.store.generation

        def writer(widx):
            wrng = random.Random(f"{seed}-w-{widx}")
            try:
                for _ in range(ops_per_writer):
                    apply_journaled_op(service, journal,
                                       base_generation, wrng)
                    time.sleep(wrng.random() * 1e-3)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reader(ridx):
            rrng = random.Random(f"{seed}-r-{ridx}")
            local = []
            try:
                for _ in range(reads_per_reader):
                    bits = random_query(rrng)
                    local.append((bits, service.search(bits)))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            with observations_lock:
                observations.extend(local)

        def burst_reader(ridx):
            """The scatter door: whole bursts, one generation each."""
            rrng = random.Random(f"{seed}-b-{ridx}")
            local = []
            try:
                for _ in range(reads_per_reader // burst_size + 1):
                    bursts = [random_query(rrng)
                              for _ in range(burst_size)]
                    for bits, served in zip(
                            bursts, service.search_many(bursts)):
                        local.append((bits, served))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            with observations_lock:
                observations.extend(local)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(n_writers)]
        threads += [threading.Thread(target=reader, args=(i,))
                    for i in range(n_readers)]
        threads += [threading.Thread(target=burst_reader, args=(i,))
                    for i in range(burst_readers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = service.stats
        published = service.backend.generation_published
        generation = service.store.generation

    assert not errors, errors
    assert generation == base_generation + len(journal)
    assert published == generation  # facade/arena lockstep held
    return journal, preload, observations, stats, base_generation


def check_snapshot_isolation(journal, preload, observations,
                             base_generation):
    """Serial replay: every result == a fresh store at its generation."""
    by_generation = {}
    for bits, served in observations:
        assert base_generation <= served.generation \
            <= base_generation + len(journal)
        by_generation.setdefault(served.generation, []).append(
            (bits, served))
    replayed = CamStore(make_config())
    replayed.insert_many([word for _, word in preload],
                         keys=[key for key, _ in preload])
    applied = 0
    for generation in sorted(by_generation):
        target = generation - base_generation
        while applied < target:
            apply_one(replayed, journal[applied])
            applied += 1
        for bits, served in by_generation[generation]:
            assert_bit_identical(
                served, replayed.search(bits, use_cache=False))


class TestCrossProcessSnapshotIsolation:
    def test_no_torn_reads_across_process_boundaries(self):
        journal, preload, observations, stats, base = run_storm(
            n_writers=2, n_readers=4, ops_per_writer=30,
            reads_per_reader=40, seed=11)
        assert observations and journal
        check_snapshot_isolation(journal, preload, observations, base)
        assert stats.served == len(observations) + WARMUP
        assert stats.writes >= len(journal)  # no-op txns also count

    def test_burst_door_holds_the_same_invariant(self):
        journal, preload, observations, stats, base = run_storm(
            n_writers=2, n_readers=2, ops_per_writer=30,
            reads_per_reader=40, seed=12, burst_readers=2)
        check_snapshot_isolation(journal, preload, observations, base)
        assert stats.direct > 0  # the scatter path actually ran

    def test_readers_span_multiple_generations(self):
        journal, preload, observations, _, base = run_storm(
            n_writers=2, n_readers=4, ops_per_writer=40,
            reads_per_reader=60, seed=13)
        generations = {served.generation for _, served in observations}
        assert len(generations) > 1
        check_snapshot_isolation(journal, preload, observations, base)

    @pytest.mark.slow
    def test_deep_storm_over_four_workers(self):
        journal, preload, observations, stats, base = run_storm(
            n_writers=3, n_readers=6, ops_per_writer=80,
            reads_per_reader=100, seed=14, workers=4, burst_readers=2)
        assert len(journal) > 80
        check_snapshot_isolation(journal, preload, observations, base)
        assert stats.coalesced > 0  # the micro-batcher coalesced
