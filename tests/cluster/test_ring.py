"""HashRing unit tests: deterministic, complete, minimally disruptive.

The front door leans on three properties: every process computes the
*same* routes (content-derived hashing, no ``PYTHONHASHSEED``), a
partition covers every query exactly once, and removing a node moves
only that node's arc — the other workers' assignments survive a death
untouched, which is what makes rehash-on-death cheap.
"""

import random

import pytest

from fecam.cluster import HashRing
from fecam.errors import OperationError, TernaryValueError


def random_queries(n, width=12, seed=7):
    rng = random.Random(seed)
    return ["".join(rng.choice("01") for _ in range(width))
            for _ in range(n)]


class TestDeterminism:
    def test_identical_rings_route_identically(self):
        a = HashRing(range(4))
        b = HashRing([3, 1, 0, 2])  # construction order must not matter
        for q in random_queries(200):
            assert a.node_for(q) == b.node_for(q)

    def test_partition_agrees_with_scalar_routing(self):
        ring = HashRing(range(4))
        queries = random_queries(300)
        for node, positions in ring.partition(queries):
            for i in positions:
                assert ring.node_for(queries[i]) == node


class TestCoverage:
    def test_partition_covers_every_index_exactly_once(self):
        ring = HashRing(range(5))
        queries = random_queries(500)
        seen = sorted(i for _, positions in ring.partition(queries)
                      for i in positions)
        assert seen == list(range(len(queries)))

    def test_load_spreads_over_workers(self):
        ring = HashRing(range(4))
        counts = {node: len(positions)
                  for node, positions in ring.partition(
                      random_queries(2000))}
        assert len(counts) == 4
        assert min(counts.values()) > 0

    def test_single_node_and_empty_fast_paths(self):
        ring = HashRing([0])
        queries = random_queries(10)
        assert ring.partition(queries) == [(0, list(range(10)))]
        assert ring.partition([]) == []
        assert ring.node_for(queries[0]) == 0

    def test_mixed_width_batch_falls_back_to_scalar(self):
        ring = HashRing(range(3))
        queries = ["0101", "01010101", "0011", "11110000"]
        seen = sorted(i for _, positions in ring.partition(queries)
                      for i in positions)
        assert seen == [0, 1, 2, 3]
        for node, positions in ring.partition(queries):
            for i in positions:
                assert ring.node_for(queries[i]) == node


class TestMembership:
    def test_removal_moves_only_the_dead_arc(self):
        ring = HashRing(range(4))
        queries = random_queries(1000)
        before = {}
        for node, positions in ring.partition(queries):
            for i in positions:
                before[i] = node
        ring.remove(2)
        for node, positions in ring.partition(queries):
            for i in positions:
                if before[i] != 2:
                    # Survivors keep every query they already owned.
                    assert node == before[i]
                else:
                    assert node != 2

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing(range(2))
        ring.add(1)
        assert ring.nodes == [0, 1]
        ring.remove(9)
        assert ring.nodes == [0, 1]

    def test_empty_ring_refuses_to_route(self):
        ring = HashRing([])
        with pytest.raises(OperationError):
            ring.node_for("0101")
        with pytest.raises(OperationError):
            ring.partition(["0101"])

    def test_bad_replicas_rejected(self):
        with pytest.raises(OperationError):
            HashRing(range(2), replicas=0)


class TestValidation:
    def test_non_ascii_query_raises_typed(self):
        ring = HashRing(range(2))
        with pytest.raises(TernaryValueError):
            ring.partition(["01ü1", "0111"])
