"""Tests for ternary data types and the functional match specification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fecam.cam import (first_mismatch_step, mismatch_positions,
                       normalize_query, normalize_word, ternary_match,
                       to_ternary, wildcard_expand)
from fecam.errors import TernaryValueError

words = st.text(alphabet="01X", min_size=1, max_size=24)


class TestNormalize:
    def test_word_accepts_aliases(self):
        assert normalize_word("0*1?x") == "0X1XX"

    def test_word_accepts_sequences(self):
        assert normalize_word([0, 1, "X"]) == "01X"

    def test_query_rejects_x(self):
        with pytest.raises(TernaryValueError):
            normalize_query("01X")

    def test_empty_rejected(self):
        with pytest.raises(TernaryValueError):
            normalize_word("")
        with pytest.raises(TernaryValueError):
            normalize_query([])

    def test_bad_symbols_rejected(self):
        with pytest.raises(TernaryValueError):
            normalize_word("012")
        with pytest.raises(TernaryValueError):
            normalize_word([2])


class TestMatch:
    def test_exact_match(self):
        assert ternary_match("0101", "0101")

    def test_mismatch(self):
        assert not ternary_match("0101", "0111")

    def test_wildcards_match_anything(self):
        assert ternary_match("XXXX", "0110")

    def test_length_mismatch_raises(self):
        with pytest.raises(TernaryValueError):
            ternary_match("01", "011")

    def test_mismatch_positions(self):
        assert mismatch_positions("0X10", "0110") == []
        assert mismatch_positions("0010", "0110") == [1]
        assert mismatch_positions("1111", "0000") == [0, 1, 2, 3]


class TestFirstMismatchStep:
    def test_match_is_step_zero(self):
        assert first_mismatch_step("01X", "010") == 0

    def test_even_position_is_step_one(self):
        assert first_mismatch_step("0101", "1101") == 1

    def test_odd_position_is_step_two(self):
        assert first_mismatch_step("0101", "0001") == 2

    def test_both_positions_resolve_in_step_one(self):
        assert first_mismatch_step("0101", "1001") == 1


class TestEncodings:
    def test_to_ternary_plain(self):
        assert to_ternary(5, 4) == "0101"

    def test_to_ternary_prefix(self):
        assert to_ternary(0b1100, 4, dont_care_low=2) == "11XX"

    def test_to_ternary_range_checks(self):
        with pytest.raises(TernaryValueError):
            to_ternary(16, 4)
        with pytest.raises(TernaryValueError):
            to_ternary(1, 4, dont_care_low=5)

    def test_wildcard_expand(self):
        assert sorted(wildcard_expand("1X0")) == ["100", "110"]
        assert wildcard_expand("11") == ["11"]

    def test_wildcard_expand_limit(self):
        with pytest.raises(TernaryValueError):
            wildcard_expand("X" * 21)


@settings(max_examples=60, deadline=None)
@given(words)
def test_expansion_matches_spec(stored):
    """Every expansion of a ternary word matches it; siblings don't
    necessarily, but non-expansions with a differing cared bit never do."""
    stored = normalize_word(stored)
    if stored.count("X") > 8:
        stored = stored.replace("X", "1")
    for binary in wildcard_expand(stored):
        assert ternary_match(stored, binary)


@settings(max_examples=60, deadline=None)
@given(words, st.integers(min_value=0, max_value=2 ** 24 - 1))
def test_first_mismatch_step_consistent(stored, seed):
    """first_mismatch_step == 0 exactly when the word matches."""
    stored = normalize_word(stored)
    query = format(seed % (2 ** len(stored)), f"0{len(stored)}b")
    step = first_mismatch_step(stored, query)
    assert (step == 0) == ternary_match(stored, query)
    if step:
        positions = mismatch_positions(stored, query)
        assert (step == 1) == any(p % 2 == 0 for p in positions)
