"""Integration tests: word-level search sims and full-array netlists.

These are the heavyweight circuit tests; content is kept at modest word
lengths so the suite stays fast while still exercising every design and
scenario.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fecam.cam import (TcamArrayCircuit, scenario_content,
                       simulate_word_search, ternary_match)
from fecam.designs import DesignKind
from fecam.errors import OperationError

TWO_STEP = (DesignKind.SG_1T5, DesignKind.DG_1T5)
SINGLE = (DesignKind.SG_2FEFET, DesignKind.DG_2FEFET, DesignKind.CMOS_16T)


class TestScenarioContent:
    def test_match_content(self):
        stored, query = scenario_content(DesignKind.DG_1T5, 8, "match")
        assert stored == query
        assert stored.count("1") == 4

    def test_step_miss_positions(self):
        stored, q1 = scenario_content(DesignKind.DG_1T5, 8, "step1_miss")
        assert stored[0] != q1[0]
        stored, q2 = scenario_content(DesignKind.DG_1T5, 8, "step2_miss")
        assert stored[1] != q2[1]

    def test_odd_length_rejected(self):
        with pytest.raises(OperationError):
            scenario_content(DesignKind.DG_1T5, 7, "match")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(OperationError):
            simulate_word_search(DesignKind.DG_1T5, 8, "bogus")


class TestWordSearch:
    @pytest.mark.parametrize("design", TWO_STEP)
    def test_two_step_scenarios(self, design):
        for scenario in ("match", "step1_miss", "step2_miss"):
            r = simulate_word_search(design, 16, scenario)
            assert r.functionally_correct, (design, scenario)

    @pytest.mark.parametrize("design", SINGLE)
    def test_single_step_scenarios(self, design):
        for scenario in ("match", "miss"):
            r = simulate_word_search(design, 16, scenario)
            assert r.functionally_correct, (design, scenario)

    def test_early_termination_runs_one_step(self):
        r = simulate_word_search(DesignKind.DG_1T5, 16, "step1_miss")
        assert r.steps_run == 1
        r2 = simulate_word_search(DesignKind.DG_1T5, 16, "step2_miss")
        assert r2.steps_run == 2

    def test_one_step_cheaper_than_two(self):
        r1 = simulate_word_search(DesignKind.DG_1T5, 16, "step1_miss")
        r2 = simulate_word_search(DesignKind.DG_1T5, 16, "step2_miss")
        assert r1.energy_total < r2.energy_total
        assert r1.latency < r2.latency

    def test_energy_groups_cover_total(self):
        r = simulate_word_search(DesignKind.DG_1T5, 16, "match")
        assert sum(r.energy_by_group.values()) == pytest.approx(r.energy_total)
        assert "ml_precharge" in r.energy_by_group
        assert "select_lines" in r.energy_by_group

    def test_custom_content(self):
        r = simulate_word_search(DesignKind.DG_1T5, scenario="custom",
                                 stored="1X0X10XX", query="11011000")
        assert r.functionally_correct

    def test_match_keeps_ml_above_threshold(self):
        r = simulate_word_search(DesignKind.SG_1T5, 16, "match")
        assert r.ml_min > 0.4

    def test_x_heavy_word_survives(self):
        # An all-X word matches everything — the aggregate TML leak and
        # inter-step coupling must not discharge the ML.
        for design in TWO_STEP:
            r = simulate_word_search(design, 16, "x",
                                     stored="X" * 16, query="10" * 8)
            assert r.matched, design


class TestArrayCircuit:
    @pytest.mark.parametrize("design", [DesignKind.DG_1T5, DesignKind.SG_1T5,
                                        DesignKind.DG_2FEFET,
                                        DesignKind.SG_2FEFET])
    def test_fig5_2x4_array(self, design):
        """The paper's Fig. 5(c)/(d) 2x4 array, functionally verified."""
        arr = TcamArrayCircuit(design, rows=2, cols=4)
        arr.program(0, "10X1")
        arr.program(1, "0110")
        r = arr.search("1011")
        assert r.functionally_correct
        assert r.matches == [True, False]
        assert r.match_address == 0

    def test_priority_address(self):
        arr = TcamArrayCircuit(DesignKind.DG_1T5, rows=3, cols=4)
        arr.program(0, "0000")
        arr.program(1, "XXXX")
        arr.program(2, "1111")
        r = arr.search("1111")
        assert r.matches == [False, True, True]
        assert r.match_address == 1

    def test_validation(self):
        with pytest.raises(OperationError):
            TcamArrayCircuit(DesignKind.CMOS_16T, rows=2, cols=4)
        with pytest.raises(OperationError):
            TcamArrayCircuit(DesignKind.DG_1T5, rows=2, cols=3)
        arr = TcamArrayCircuit(DesignKind.DG_1T5, rows=1, cols=4)
        with pytest.raises(OperationError):
            arr.search("1111")  # unprogrammed
        with pytest.raises(OperationError):
            arr.program(0, "111")  # wrong length

    def test_word_model_agrees_with_full_array(self):
        """The reduced (multiplier) word model and the unreduced netlist
        must agree on match outcomes."""
        stored, query = "1X010X", "110100"
        word = simulate_word_search(DesignKind.DG_1T5, scenario="x",
                                    stored=stored, query=query)
        arr = TcamArrayCircuit(DesignKind.DG_1T5, rows=1, cols=6)
        arr.program(0, stored)
        full = arr.search(query)
        assert word.matched == full.matches[0] == ternary_match(stored, query)


@settings(max_examples=6, deadline=None)
@given(st.lists(st.sampled_from("01X"), min_size=8, max_size=8),
       st.lists(st.sampled_from("01"), min_size=8, max_size=8))
def test_word_search_matches_specification(stored_syms, query_bits):
    """Property: circuit-level search equals the ternary_match spec."""
    stored = "".join(stored_syms)
    query = "".join(query_bits)
    r = simulate_word_search(DesignKind.DG_1T5, scenario="prop",
                             stored=stored, query=query)
    assert r.matched == ternary_match(stored, query)
