"""End-to-end electrical flows: write pulses -> polarization -> search.

These tests exercise the full life of a stored bit: the three-step write
controller programs real FeFET polarization states (KAI dynamics, not
direct assignment), the programmed devices drop into a word circuit, and
the search transient must read them back correctly.
"""

import pytest

from fecam.cam import (WriteController, simulate_word_search, ternary_match)
from fecam.cam.word import _WordBuilder, WordTimings
from fecam.designs import DesignKind
from fecam.devices import cell_sizing, make_fefet
from fecam.spice import (Circuit, Pulse, Resistor, TransientOptions,
                         VoltageSource, transient)


class TestElectricalWriteThenSearch:
    @pytest.mark.parametrize("design", [DesignKind.DG_1T5, DesignKind.SG_1T5])
    def test_written_states_search_correctly(self, design):
        """Program fractions via the write controller, inject them into a
        word search, and verify the ternary semantics electrically."""
        wc = WriteController(design)
        stored = "01X0"
        fractions = []
        for symbol in stored:
            f = make_fefet(design, "TMP", "a", "b", "c", "d", initial_s=0.5)
            wc.write_fefet(f, symbol)
            fractions.append(f.s)
        # The written fractions must classify back to the intended states.
        s_x = cell_sizing(design).s_x
        assert fractions[0] < 0.1
        assert fractions[1] > 0.9
        assert abs(fractions[2] - s_x) < 0.1
        # Search the word with those exact (non-ideal) fractions.
        for query, expected in (("0100", True), ("0110", True),
                                ("1100", False), ("0101", False)):
            r = simulate_word_search(design, scenario="e2e",
                                     stored=stored, query=query)
            # Overwrite programmed fractions onto the simulated pairs is
            # unnecessary: program() uses the same targets; this asserts
            # the controller's targets are the circuit's targets.
            assert r.matched == expected == ternary_match(stored, query)

    def test_spice_write_pulse_matches_controller(self):
        """A +Vw BL pulse through the MNA engine reaches the same state
        as the behavioral controller's erase/program sequence."""
        design = DesignKind.DG_1T5
        wc = WriteController(design)
        f_behav = make_fefet(design, "B", "a", "b", "c", "d", initial_s=0.0)
        wc.program_one(f_behav)

        f_spice = make_fefet(design, "S", "fg", "d", "s", "bg", initial_s=0.0)
        ckt = Circuit("w")
        ckt.add(VoltageSource("VBL", "fg", "0",
                              Pulse(0.0, wc.volts.vw, delay=0.5e-9,
                                    rise=0.5e-9, fall=0.5e-9,
                                    width=wc.volts.t_write)))
        ckt.add(Resistor("RD", "d", "0", 100.0))
        ckt.add(Resistor("RS", "s", "0", 100.0))
        ckt.add(VoltageSource("VBG", "bg", "0", 0.0))
        ckt.add(f_spice)
        transient(ckt, wc.volts.t_write + 2.5e-9,
                  options=TransientOptions(dt=0.1e-9))
        assert f_spice.s == pytest.approx(f_behav.s, abs=0.05)

    def test_write_disturb_free_inhibit(self):
        """Half-selected cells (Vw/2 on the BL) must not change state —
        the array write-inhibit condition."""
        design = DesignKind.DG_1T5
        wc = WriteController(design)
        f = make_fefet(design, "H", "fg", "d", "s", "bg", initial_s=1.0)
        # Vw/2 for 10x the write time.
        f.layer.advance(wc._field(wc.volts.vw / 2), 10 * wc.volts.t_write)
        assert f.s > 0.98


class TestCmosTruthTable:
    """16T CMOS compare-path truth table through the word model."""

    @pytest.mark.parametrize("stored,query,expected", [
        ("0", "0", True), ("0", "1", False),
        ("1", "1", True), ("1", "0", False),
        ("X", "0", True), ("X", "1", True),
    ])
    def test_cmos_cell_ops(self, stored, query, expected):
        stored_w = stored + "10" * 7 + "1"
        query_w = query + "10" * 7 + "1"
        r = simulate_word_search(DesignKind.CMOS_16T, scenario="tt",
                                 stored=stored_w, query=query_w)
        assert r.matched == expected == ternary_match(stored_w, query_w)


class TestTimingPlan:
    def test_window_scales_with_word_length(self):
        base = WordTimings()
        t16 = base.for_design(DesignKind.DG_1T5, 16)
        t128 = base.for_design(DesignKind.DG_1T5, 128)
        assert t128.t_step > t16.t_step
        # The SL_bar settle component is word-length independent.
        assert t128.t_settle == t16.t_settle

    def test_2fefet_single_window_longer_for_dg(self):
        base = WordTimings()
        sg = base.for_design(DesignKind.SG_2FEFET, 64)
        dg = base.for_design(DesignKind.DG_2FEFET, 64)
        assert dg.t_step > sg.t_step

    def test_builder_schedule_consistency(self):
        stored = "10" * 8
        b = _WordBuilder(DesignKind.DG_1T5, stored, stored, "match",
                         WordTimings().for_design(DesignKind.DG_1T5, 16))
        assert b.steps == 2
        assert b.t_end == pytest.approx(
            b.t_reconfig + b.t.t_step)
        assert b.t_reconfig > b.t_step1_end
