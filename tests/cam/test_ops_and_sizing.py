"""Tests for the write controller, search policy, and divider sizing."""

import pytest

from fecam.cam import (SearchPolicy, WriteController, divider_margins,
                       explore_sizing, slbar_level, two_step_search_outcome)
from fecam.designs import DesignKind
from fecam.devices import cell_sizing, make_fefet
from fecam.errors import OperationError


class TestWriteController:
    def test_cmos_rejected(self):
        with pytest.raises(OperationError):
            WriteController(DesignKind.CMOS_16T)

    def test_erase_then_program(self):
        wc = WriteController(DesignKind.DG_1T5)
        f = make_fefet(DesignKind.DG_1T5, "F", "a", "b", "c", "d",
                       initial_s=1.0)
        wc.erase(f)
        assert f.s < 0.05
        wc.program_one(f)
        assert f.s > 0.95

    def test_program_x_lands_on_target(self):
        wc = WriteController(DesignKind.DG_1T5)
        target = cell_sizing(DesignKind.DG_1T5).s_x
        f = make_fefet(DesignKind.DG_1T5, "F", "a", "b", "c", "d")
        wc.erase(f)
        pulses = wc.program_x(f)
        assert pulses >= 1
        assert abs(f.s - target) < 0.08

    def test_program_x_sg(self):
        wc = WriteController(DesignKind.SG_1T5)
        target = cell_sizing(DesignKind.SG_1T5).s_x
        f = make_fefet(DesignKind.SG_1T5, "F", "a", "b", "c", "d")
        wc.erase(f)
        wc.program_x(f)
        assert abs(f.s - target) < 0.08

    def test_write_energy_ladder(self):
        """Paper Tab. IV: 1.63 / 0.81 / 0.82 / 0.41 fJ (4:2:2:1)."""
        e = {d: WriteController(d).write_energy_per_cell()
             for d in DesignKind.fefet_designs()}
        assert e[DesignKind.SG_2FEFET] == pytest.approx(1.63e-15, rel=0.02)
        assert e[DesignKind.DG_2FEFET] == pytest.approx(0.81e-15, rel=0.02)
        assert e[DesignKind.SG_1T5] == pytest.approx(0.82e-15, rel=0.02)
        assert e[DesignKind.DG_1T5] == pytest.approx(0.41e-15, rel=0.02)

    def test_x_write_energy_extra_step(self):
        wc = WriteController(DesignKind.DG_1T5)
        assert wc.write_energy_per_cell("X") > wc.write_energy_per_cell("1")

    def test_write_pair(self):
        wc = WriteController(DesignKind.DG_1T5)
        f1 = make_fefet(DesignKind.DG_1T5, "F1", "a", "b", "c", "d")
        f2 = make_fefet(DesignKind.DG_1T5, "F2", "a", "b", "c", "e")
        report = wc.write_pair(f1, f2, "1X")
        assert f1.s > 0.9
        assert 0.5 < f2.s < 0.9
        assert report.steps == 3
        assert report.energy_per_cell > 0

    def test_write_2fefet_cell_complementary(self):
        wc = WriteController(DesignKind.DG_2FEFET)
        fa = make_fefet(DesignKind.DG_2FEFET, "A", "a", "b", "c", "d")
        fb = make_fefet(DesignKind.DG_2FEFET, "B", "a", "b", "c", "e")
        wc.write_2fefet_cell(fa, fb, "0")
        assert fa.s < 0.1 and fb.s > 0.9
        wc.write_2fefet_cell(fa, fb, "X")
        assert fa.s < 0.1 and fb.s < 0.1

    def test_wrong_design_pairing(self):
        wc = WriteController(DesignKind.DG_2FEFET)
        f1 = make_fefet(DesignKind.DG_2FEFET, "F1", "a", "b", "c", "d")
        f2 = make_fefet(DesignKind.DG_2FEFET, "F2", "a", "b", "c", "e")
        with pytest.raises(OperationError):
            wc.write_pair(f1, f2, "1X")


class TestSearchPolicy:
    def test_match_runs_two_steps(self):
        out = two_step_search_outcome("1X", "10")
        assert out.matched and out.steps_run == 2 and out.resolved_in_step == 0

    def test_step1_miss_terminates_early(self):
        out = two_step_search_outcome("0X", "10")
        assert not out.matched and out.steps_run == 1

    def test_step2_miss_runs_both(self):
        out = two_step_search_outcome("X0", "11")
        assert not out.matched and out.steps_run == 2
        assert out.resolved_in_step == 2

    def test_policy_disable(self):
        out = two_step_search_outcome("0X", "10",
                                      SearchPolicy(early_termination=False))
        assert out.steps_run == 2


class TestDividerSizing:
    @pytest.mark.parametrize("design", [DesignKind.SG_1T5, DesignKind.DG_1T5])
    def test_frozen_sizing_is_functional(self, design):
        m = divider_margins(design)
        assert m.functional
        assert m.mismatch_margin > 0.08
        assert m.match_margin > 0.08

    def test_slbar_levels_ordered(self):
        # The mismatch levels must straddle the threshold from above and
        # all match/don't-care levels from below.
        m = divider_margins(DesignKind.DG_1T5)
        lv = m.levels
        assert lv.v_store1_search0 > m.tml_vth > lv.v_storeX_search0
        assert lv.v_store0_search1 > m.tml_vth > lv.v_storeX_search1

    def test_slbar_level_input_validation(self):
        with pytest.raises(OperationError):
            slbar_level(DesignKind.DG_1T5, 0.5, "2")
        with pytest.raises(OperationError):
            divider_margins(DesignKind.DG_2FEFET)

    def test_explore_sizing_ranks_candidates(self):
        results = explore_sizing(DesignKind.DG_1T5,
                                 tn_lengths=(240e-9,), tp_lengths=(240e-9,),
                                 tml_vths=(0.30, 0.35), s_x_values=(0.70, 0.74))
        assert len(results) == 4
        scores = [min(r.mismatch_margin, r.match_margin) for r in results]
        assert scores == sorted(scores, reverse=True)
