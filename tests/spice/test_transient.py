"""Transient analysis tests against closed-form RC answers."""

import math

import numpy as np
import pytest

from fecam.errors import SimulationError
from fecam.spice import (Capacitor, Circuit, Pulse, Resistor, Switch, Sine,
                         TransientOptions, VoltageSource, transient)


def rc_circuit(r=1e3, c=1e-12, v_hi=1.0, rise=1e-12):
    ckt = Circuit("rc")
    ckt.add(VoltageSource("VIN", "in", "0", Pulse(0.0, v_hi, rise=rise,
                                                  width=1.0)))
    ckt.add(Resistor("R1", "in", "out", r))
    ckt.add(Capacitor("C1", "out", "0", c))
    return ckt


class TestRCCharging:
    def test_exponential_charge_curve(self):
        tau = 1e-9  # 1 kOhm * 1 pF
        result = transient(rc_circuit(), 5e-9,
                           options=TransientOptions(dt=5e-12))
        for frac_tau in (0.5, 1.0, 2.0, 3.0):
            t = frac_tau * tau
            expected = 1.0 - math.exp(-frac_tau)
            assert result.sample("out", t) == pytest.approx(expected, abs=0.01)

    def test_final_value_reaches_supply(self):
        result = transient(rc_circuit(), 10e-9,
                           options=TransientOptions(dt=10e-12))
        assert result.final("out") == pytest.approx(1.0, abs=1e-3)

    def test_crossing_time_matches_analytics(self):
        # v(t) = 1 - exp(-t/tau); crosses 0.5 at tau*ln(2).
        result = transient(rc_circuit(), 5e-9,
                           options=TransientOptions(dt=2e-12))
        t_cross = result.crossing_time("out", 0.5, rising=True)
        assert t_cross == pytest.approx(1e-9 * math.log(2), rel=0.02)

    def test_initial_condition_forced(self):
        ckt = Circuit("ic")
        ckt.add(VoltageSource("VIN", "in", "0", 0.0))
        ckt.add(Resistor("R1", "in", "out", 1e3))
        ckt.add(Capacitor("C1", "out", "0", 1e-12, ic=1.0))
        result = transient(ckt, 5e-9, options=TransientOptions(dt=5e-12))
        # Discharges from the forced 1 V toward 0.
        assert result.sample("out", 1e-9) == pytest.approx(math.exp(-1.0), abs=0.02)
        assert result.final("out") == pytest.approx(0.0, abs=1e-2)

    def test_t_stop_must_be_positive(self):
        with pytest.raises(SimulationError):
            transient(rc_circuit(), -1e-9)


class TestEnergyAccounting:
    def test_source_energy_on_full_charge(self):
        # Charging C to V through R draws E = C*V^2 from the source
        # (half stored, half dissipated), independent of R.
        c, v = 1e-12, 1.0
        result = transient(rc_circuit(c=c, v_hi=v), 20e-9,
                           options=TransientOptions(dt=10e-12))
        assert result.energy("VIN") == pytest.approx(c * v * v, rel=0.02)

    def test_energy_window_restricts_integration(self):
        result = transient(rc_circuit(), 20e-9,
                           options=TransientOptions(dt=10e-12))
        e_total = result.energy("VIN")
        e_first = result.energy("VIN", t_stop=1e-9)
        e_rest = result.energy("VIN", t_start=1e-9)
        assert e_first + e_rest == pytest.approx(e_total, rel=1e-6)
        assert 0 < e_first < e_total

    def test_total_energy_prefix_filter(self):
        ckt = rc_circuit()
        ckt.add(VoltageSource("VAUX", "aux", "0", 0.0))
        ckt.add(Resistor("RAUX", "aux", "0", 1e6))
        result = transient(ckt, 5e-9, options=TransientOptions(dt=10e-12))
        assert result.total_energy("VIN") == pytest.approx(result.energy("VIN"))
        assert result.total_energy() == pytest.approx(
            result.energy("VIN") + result.energy("VAUX"))

    def test_idle_source_delivers_nothing(self):
        ckt = rc_circuit()
        ckt.add(VoltageSource("VIDLE", "idle", "0", 0.0))
        ckt.add(Resistor("RIDLE", "idle", "0", 1e6))
        result = transient(ckt, 5e-9, options=TransientOptions(dt=10e-12))
        assert result.energy("VIDLE") == pytest.approx(0.0, abs=1e-20)


class TestMeasurements:
    def test_delay_between_nodes(self):
        # Two cascaded RC stages: the second lags the first.
        ckt = Circuit("rc2")
        ckt.add(VoltageSource("VIN", "in", "0", Pulse(0.0, 1.0, rise=1e-12,
                                                      width=1.0)))
        ckt.add(Resistor("R1", "in", "m", 1e3))
        ckt.add(Capacitor("C1", "m", "0", 1e-13))
        ckt.add(Resistor("R2", "m", "out", 1e3))
        ckt.add(Capacitor("C2", "out", "0", 1e-13))
        result = transient(ckt, 3e-9, options=TransientOptions(dt=2e-12))
        d = result.delay("m", "out", from_level=0.5, to_level=0.5)
        assert d is not None and d > 0

    def test_crossing_none_when_never_crossed(self):
        result = transient(rc_circuit(), 5e-9,
                           options=TransientOptions(dt=10e-12))
        assert result.crossing_time("out", 2.0, rising=True) is None
        assert result.crossing_time("out", 0.5, rising=False) is None

    def test_falling_crossing(self):
        ckt = Circuit("fall")
        ckt.add(VoltageSource("VIN", "in", "0",
                              Pulse(1.0, 0.0, delay=1e-9, rise=1e-12, width=1.0)))
        ckt.add(Resistor("R1", "in", "out", 1e3))
        ckt.add(Capacitor("C1", "out", "0", 1e-13))
        result = transient(ckt, 3e-9, options=TransientOptions(dt=2e-12))
        t = result.crossing_time("out", 0.5, rising=False)
        assert t is not None and t > 1e-9

    def test_slice_window(self):
        result = transient(rc_circuit(), 5e-9,
                           options=TransientOptions(dt=10e-12))
        part = result.slice(1e-9, 2e-9)
        assert part.t[0] >= 1e-9
        assert part.t[-1] <= 2e-9
        assert len(part.voltage("out")) == len(part.t)

    def test_unrecorded_node_raises(self):
        result = transient(rc_circuit(), 1e-9,
                           options=TransientOptions(dt=10e-12),
                           record_nodes=["out"])
        with pytest.raises(SimulationError):
            result.voltage("in")
        assert len(result.voltage("out")) == len(result.t)


class TestSwitchTransient:
    def test_switched_discharge(self):
        # Precharge a cap via initial condition, then close a switch at 1 ns.
        ckt = Circuit("swt")
        ckt.add(Capacitor("CML", "ml", "0", 10e-15, ic=0.8))
        ckt.add(VoltageSource("VCTRL", "ctrl", "0",
                              Pulse(0.0, 0.8, delay=1e-9, rise=10e-12, width=1.0)))
        ckt.add(Switch("S1", "ml", "0", "ctrl", r_on=1e4, r_off=1e12))
        result = transient(ckt, 4e-9, options=TransientOptions(dt=5e-12))
        # Holds before the switch closes...
        assert result.sample("ml", 0.9e-9) == pytest.approx(0.8, abs=0.02)
        # ...then discharges with tau = 10 fF * 10 kOhm = 0.1 ns.
        assert result.sample("ml", 1.6e-9) < 0.1
        t_cross = result.crossing_time("ml", 0.4, rising=False)
        assert t_cross == pytest.approx(1e-9 + 0.1e-9 * math.log(2), rel=0.25)


class TestSineResponse:
    def test_low_pass_attenuates(self):
        # f = 1/(2*pi*tau) gives |H| = 1/sqrt(2).
        tau = 1e-9
        freq = 1.0 / (2 * math.pi * tau)
        ckt = Circuit("lp")
        ckt.add(VoltageSource("VIN", "in", "0", Sine(0.0, 1.0, freq)))
        ckt.add(Resistor("R1", "in", "out", 1e3))
        ckt.add(Capacitor("C1", "out", "0", 1e-12))
        result = transient(ckt, 20 / freq,
                           options=TransientOptions(dt=0.01 / freq))
        # Steady-state amplitude over the last few periods.
        tail = result.slice(10 / freq, 20 / freq)
        amplitude = 0.5 * (tail.voltage("out").max() - tail.voltage("out").min())
        assert amplitude == pytest.approx(1 / math.sqrt(2), abs=0.06)
