"""Unit tests for circuit/netlist construction."""

import pytest

from fecam.errors import NetlistError
from fecam.spice import (Capacitor, Circuit, Resistor, VoltageSource,
                         canonical_node)


class TestCanonicalNode:
    def test_ground_aliases_collapse(self):
        assert canonical_node("0") == "0"
        assert canonical_node("gnd") == "0"
        assert canonical_node("GND") == "0"
        assert canonical_node("ground") == "0"

    def test_regular_names_pass_through(self):
        assert canonical_node("ml") == "ml"
        assert canonical_node("sl_bar[3]") == "sl_bar[3]"

    def test_empty_name_rejected(self):
        with pytest.raises(NetlistError):
            canonical_node("")

    def test_non_string_rejected(self):
        with pytest.raises(NetlistError):
            canonical_node(7)


class TestCircuit:
    def test_nodes_registered_by_elements(self):
        ckt = Circuit("t")
        ckt.add(Resistor("R1", "a", "b", 1e3))
        assert "a" in ckt
        assert "b" in ckt
        assert ckt.num_nodes == 2

    def test_ground_not_counted_as_node(self):
        ckt = Circuit("t")
        ckt.add(Resistor("R1", "a", "0", 1e3))
        assert ckt.num_nodes == 1
        assert "0" in ckt
        assert ckt.node_index("gnd") == -1

    def test_duplicate_element_name_rejected(self):
        ckt = Circuit("t")
        ckt.add(Resistor("R1", "a", "0", 1e3))
        with pytest.raises(NetlistError, match="duplicate"):
            ckt.add(Resistor("R1", "b", "0", 1e3))

    def test_element_lookup(self):
        ckt = Circuit("t")
        r = ckt.add(Resistor("R1", "a", "0", 1e3))
        assert ckt.element("R1") is r
        assert ckt.has_element("R1")
        assert not ckt.has_element("R2")
        with pytest.raises(NetlistError):
            ckt.element("R2")

    def test_unknown_node_index_raises(self):
        ckt = Circuit("t")
        with pytest.raises(NetlistError):
            ckt.node_index("nowhere")

    def test_elements_of_type(self):
        ckt = Circuit("t")
        ckt.add(Resistor("R1", "a", "0", 1e3))
        ckt.add(Capacitor("C1", "a", "0", 1e-15))
        ckt.add(VoltageSource("V1", "a", "0", 1.0))
        assert len(ckt.elements_of_type(Resistor)) == 1
        assert len(ckt.elements_of_type(Capacitor)) == 1
        assert len(ckt.elements_of_type(VoltageSource)) == 1

    def test_extend(self):
        ckt = Circuit("t")
        ckt.extend([Resistor("R1", "a", "b", 1.0), Resistor("R2", "b", "0", 1.0)])
        assert len(ckt.elements) == 2

    def test_summary_lists_every_element(self):
        ckt = Circuit("demo")
        ckt.add(Resistor("R1", "a", "0", 1e3))
        ckt.add(VoltageSource("V1", "a", "0", 1.0))
        text = ckt.summary()
        assert "R1" in text
        assert "V1" in text
        assert "demo" in text


class TestElementValidation:
    def test_negative_resistance_rejected(self):
        with pytest.raises(NetlistError):
            Resistor("R1", "a", "b", -5.0)

    def test_zero_resistance_rejected(self):
        with pytest.raises(NetlistError):
            Resistor("R1", "a", "b", 0.0)

    def test_zero_capacitance_rejected(self):
        with pytest.raises(NetlistError):
            Capacitor("C1", "a", "b", 0.0)

    def test_empty_element_name_rejected(self):
        with pytest.raises(NetlistError):
            Resistor("", "a", "b", 1.0)

    def test_source_requires_waveform_or_number(self):
        with pytest.raises(NetlistError):
            VoltageSource("V1", "a", "0", "not-a-waveform")
