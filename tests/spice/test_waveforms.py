"""Unit tests for source waveforms."""

import math

import pytest

from fecam.errors import NetlistError
from fecam.spice import DC, PWL, Pulse, Sine, step_sequence


class TestDC:
    def test_constant(self):
        w = DC(1.5)
        assert w.value(0.0) == 1.5
        assert w.value(1e9) == 1.5
        assert w(3.0) == 1.5


class TestPulse:
    def test_initial_level(self):
        w = Pulse(0.0, 1.0, delay=1e-9, rise=1e-10, width=1e-9)
        assert w.value(0.0) == 0.0
        assert w.value(0.99e-9) == 0.0

    def test_rise_midpoint(self):
        w = Pulse(0.0, 1.0, delay=0.0, rise=1e-10, width=1e-9)
        assert w.value(0.5e-10) == pytest.approx(0.5)

    def test_plateau(self):
        w = Pulse(0.0, 1.0, delay=0.0, rise=1e-10, width=1e-9)
        assert w.value(0.5e-9) == 1.0

    def test_fall_and_return(self):
        w = Pulse(0.0, 1.0, delay=0.0, rise=1e-10, fall=2e-10, width=1e-9)
        t_fall_mid = 1e-10 + 1e-9 + 1e-10
        assert w.value(t_fall_mid) == pytest.approx(0.5)
        assert w.value(1e-8) == 0.0

    def test_periodic_repeats(self):
        w = Pulse(0.0, 1.0, rise=1e-12, fall=1e-12, width=1e-9, period=4e-9)
        assert w.value(0.5e-9) == pytest.approx(1.0)
        assert w.value(4.5e-9) == pytest.approx(1.0)
        assert w.value(2.5e-9) == pytest.approx(0.0)

    def test_negative_levels_supported(self):
        w = Pulse(0.0, -4.0, rise=1e-12, width=1e-9)
        assert w.value(0.5e-9) == pytest.approx(-4.0)

    def test_invalid_edges_rejected(self):
        with pytest.raises(NetlistError):
            Pulse(0, 1, rise=0.0)
        with pytest.raises(NetlistError):
            Pulse(0, 1, width=-1e-9)


class TestPWL:
    def test_holds_ends(self):
        w = PWL([(1.0, 2.0), (2.0, 4.0)])
        assert w.value(0.0) == 2.0
        assert w.value(5.0) == 4.0

    def test_interpolates(self):
        w = PWL([(0.0, 0.0), (1.0, 10.0)])
        assert w.value(0.25) == pytest.approx(2.5)

    def test_multi_segment(self):
        w = PWL([(0.0, 0.0), (1.0, 1.0), (2.0, -1.0)])
        assert w.value(1.5) == pytest.approx(0.0)

    def test_non_monotonic_times_rejected(self):
        with pytest.raises(NetlistError):
            PWL([(0.0, 0.0), (0.0, 1.0)])
        with pytest.raises(NetlistError):
            PWL([(1.0, 0.0), (0.5, 1.0)])

    def test_empty_rejected(self):
        with pytest.raises(NetlistError):
            PWL([])


class TestSine:
    def test_phase_and_amplitude(self):
        w = Sine(offset=1.0, amplitude=2.0, freq=1e9)
        assert w.value(0.0) == pytest.approx(1.0)
        assert w.value(0.25e-9) == pytest.approx(3.0)

    def test_delay(self):
        w = Sine(offset=0.0, amplitude=1.0, freq=1e9, delay=0.25e-9)
        assert w.value(0.25e-9) == pytest.approx(0.0, abs=1e-12)

    def test_bad_freq(self):
        with pytest.raises(NetlistError):
            Sine(0, 1, freq=0)


class TestShifted:
    def test_shift(self):
        w = Pulse(0.0, 1.0, rise=1e-12, width=1e-9).shifted(5e-9)
        assert w.value(4e-9) == 0.0
        assert w.value(5.5e-9) == pytest.approx(1.0)


class TestStepSequence:
    def test_levels_between_transitions(self):
        w = step_sequence([(0.0, 0.0), (1e-9, 2.0), (2e-9, 0.5)],
                          transition=10e-12)
        assert w.value(0.5e-9) == 0.0
        assert w.value(1.5e-9) == pytest.approx(2.0)
        assert w.value(3e-9) == pytest.approx(0.5)

    def test_transition_is_finite(self):
        w = step_sequence([(0.0, 0.0), (1e-9, 1.0)], transition=100e-12)
        mid = w.value(1e-9 + 50e-12)
        assert 0.4 < mid < 0.6

    def test_empty_rejected(self):
        with pytest.raises(NetlistError):
            step_sequence([])
