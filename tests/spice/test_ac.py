"""AC small-signal analysis tests against closed-form filter answers."""

import math

import numpy as np
import pytest

from fecam.devices import nmos, pmos
from fecam.errors import NetlistError, SimulationError
from fecam.spice import (Capacitor, Circuit, Resistor, VoltageSource,
                         ac_analysis)


def rc_lowpass(r=1e3, c=1e-12):
    ckt = Circuit("rc")
    ckt.add(VoltageSource("VIN", "in", "0", 0.0))
    ckt.add(Resistor("R1", "in", "out", r))
    ckt.add(Capacitor("C1", "out", "0", c))
    return ckt


class TestRCLowpass:
    def test_corner_frequency(self):
        res = ac_analysis(rc_lowpass(), "VIN", np.logspace(6, 11, 120))
        fc = res.corner_frequency("out")
        assert fc == pytest.approx(1.0 / (2 * math.pi * 1e-9), rel=0.05)

    def test_dc_gain_unity(self):
        res = ac_analysis(rc_lowpass(), "VIN", [1e3])
        assert abs(res.transfer("out")[0]) == pytest.approx(1.0, rel=1e-3)

    def test_rolloff_20db_per_decade(self):
        res = ac_analysis(rc_lowpass(), "VIN", [1e10, 1e11])
        mags = res.magnitude_db("out")
        assert mags[0] - mags[1] == pytest.approx(20.0, abs=1.0)

    def test_phase_approaches_minus90(self):
        res = ac_analysis(rc_lowpass(), "VIN", [1e11])
        assert res.phase_deg("out")[0] == pytest.approx(-90.0, abs=5.0)

    def test_divider_is_flat(self):
        ckt = Circuit("div")
        ckt.add(VoltageSource("VIN", "in", "0", 0.0))
        ckt.add(Resistor("R1", "in", "mid", 1e3))
        ckt.add(Resistor("R2", "mid", "0", 3e3))
        res = ac_analysis(ckt, "VIN", np.logspace(3, 9, 20))
        mags = np.abs(res.transfer("mid"))
        assert np.allclose(mags, 0.75, rtol=1e-3)


class TestNonlinearLinearization:
    def test_inverter_gain_at_midrail(self):
        """A CMOS inverter biased near its trip point shows small-signal
        gain > 1 — the OP-linearized G matrix carries the transistor gm."""
        ckt = Circuit("inv")
        ckt.add(VoltageSource("VDD", "vdd", "0", 0.8))
        ckt.add(VoltageSource("VIN", "in", "0", 0.40))  # near the trip point
        ckt.add(pmos("MP", "out", "in", "vdd"))
        ckt.add(nmos("MN", "out", "in", "0"))
        ckt.add(Capacitor("CL", "out", "0", 1e-15))
        res = ac_analysis(ckt, "VIN", [1e6])
        assert abs(res.transfer("out")[0]) > 1.5

    def test_inverter_bandwidth_finite(self):
        ckt = Circuit("inv")
        ckt.add(VoltageSource("VDD", "vdd", "0", 0.8))
        ckt.add(VoltageSource("VIN", "in", "0", 0.40))
        ckt.add(pmos("MP", "out", "in", "vdd"))
        ckt.add(nmos("MN", "out", "in", "0"))
        ckt.add(Capacitor("CL", "out", "0", 10e-15))
        res = ac_analysis(ckt, "VIN", np.logspace(6, 12, 60))
        fc = res.corner_frequency("out")
        assert fc is not None
        assert 1e7 < fc < 1e11


class TestValidation:
    def test_non_source_rejected(self):
        with pytest.raises(NetlistError):
            ac_analysis(rc_lowpass(), "R1", [1e6])

    def test_bad_frequencies(self):
        with pytest.raises(SimulationError):
            ac_analysis(rc_lowpass(), "VIN", [])
        with pytest.raises(SimulationError):
            ac_analysis(rc_lowpass(), "VIN", [-1e6])

    def test_unrecorded_node(self):
        res = ac_analysis(rc_lowpass(), "VIN", [1e6])
        with pytest.raises(SimulationError):
            res.transfer("nope")
