"""DC operating-point and sweep tests with analytically known answers."""

import numpy as np
import pytest

from fecam.errors import NetlistError, SimulationError
from fecam.spice import (Circuit, CurrentSource, Diode, Resistor, Switch,
                         VoltageSource, dc_sweep, operating_point)
from fecam.units import thermal_voltage


def divider(r_top=1e3, r_bot=3e3, v_in=1.0):
    ckt = Circuit("divider")
    ckt.add(VoltageSource("VIN", "in", "0", v_in))
    ckt.add(Resistor("RT", "in", "mid", r_top))
    ckt.add(Resistor("RB", "mid", "0", r_bot))
    return ckt


class TestResistiveCircuits:
    def test_divider_voltage(self):
        op = operating_point(divider())
        assert op.voltage("mid") == pytest.approx(0.75, rel=1e-6)

    def test_divider_source_current(self):
        op = operating_point(divider())
        # 1 V across 4 kOhm; current through the source is -250 uA with the
        # pos->neg branch convention (source delivering).
        assert op.current("VIN") == pytest.approx(-0.25e-3, rel=1e-6)

    def test_ground_always_zero(self):
        op = operating_point(divider())
        assert op.voltage("0") == 0.0
        assert op.voltage("gnd") == 0.0

    def test_series_parallel_network(self):
        ckt = Circuit("net")
        ckt.add(VoltageSource("V1", "a", "0", 10.0))
        ckt.add(Resistor("R1", "a", "b", 1e3))
        ckt.add(Resistor("R2", "b", "0", 2e3))
        ckt.add(Resistor("R3", "b", "0", 2e3))
        # R2 || R3 = 1k, so v(b) = 5 V.
        op = operating_point(ckt)
        assert op.voltage("b") == pytest.approx(5.0, rel=1e-6)

    def test_current_source_into_resistor(self):
        ckt = Circuit("isrc")
        # 1 mA pulled from ground through the source into node a.
        ckt.add(CurrentSource("I1", "0", "a", 1e-3))
        ckt.add(Resistor("R1", "a", "0", 1e3))
        op = operating_point(ckt)
        assert op.voltage("a") == pytest.approx(1.0, rel=1e-5)

    def test_two_sources_superpose(self):
        ckt = Circuit("two")
        ckt.add(VoltageSource("V1", "a", "0", 2.0))
        ckt.add(VoltageSource("V2", "b", "0", 1.0))
        ckt.add(Resistor("R1", "a", "m", 1e3))
        ckt.add(Resistor("R2", "b", "m", 1e3))
        ckt.add(Resistor("R3", "m", "0", 1e30 if False else 1e12))
        op = operating_point(ckt)
        assert op.voltage("m") == pytest.approx(1.5, rel=1e-4)

    def test_floating_node_settles_via_gmin(self):
        ckt = Circuit("float")
        ckt.add(VoltageSource("V1", "a", "0", 1.0))
        ckt.add(Resistor("R1", "a", "b", 1e3))
        # Node c has no DC path except gmin; should solve without error.
        ckt.add(Resistor("R2", "b", "c", 1e3))
        op = operating_point(ckt)
        assert np.isfinite(op.voltage("c"))

    def test_unknown_node_raises(self):
        op = operating_point(divider())
        with pytest.raises(SimulationError):
            op.voltage("nope")
        with pytest.raises(SimulationError):
            op.current("nope")


class TestDiode:
    def test_forward_drop_near_expected(self):
        ckt = Circuit("diode")
        ckt.add(VoltageSource("V1", "a", "0", 5.0))
        ckt.add(Resistor("R1", "a", "d", 1e3))
        ckt.add(Diode("D1", "d", "0"))
        op = operating_point(ckt)
        vd = op.voltage("d")
        assert 0.55 < vd < 0.85

    def test_diode_equation_consistency(self):
        ckt = Circuit("diode")
        ckt.add(VoltageSource("V1", "a", "0", 5.0))
        ckt.add(Resistor("R1", "a", "d", 1e3))
        d = Diode("D1", "d", "0", i_sat=1e-14)
        ckt.add(d)
        op = operating_point(ckt)
        vd = op.voltage("d")
        i_resistor = (5.0 - vd) / 1e3
        i_diode = 1e-14 * (np.exp(vd / thermal_voltage()) - 1.0)
        assert i_diode == pytest.approx(i_resistor, rel=1e-3)

    def test_reverse_bias_blocks(self):
        ckt = Circuit("diode-rev")
        ckt.add(VoltageSource("V1", "a", "0", -5.0))
        ckt.add(Resistor("R1", "a", "d", 1e3))
        ckt.add(Diode("D1", "d", "0"))
        op = operating_point(ckt)
        # Almost the full -5 V appears across the blocking diode.
        assert op.voltage("d") == pytest.approx(-5.0, abs=0.05)


class TestSwitch:
    def test_switch_on_pulls_node(self):
        ckt = Circuit("sw")
        ckt.add(VoltageSource("V1", "a", "0", 1.0))
        ckt.add(VoltageSource("VC", "c", "0", 1.0))
        ckt.add(Resistor("R1", "a", "m", 1e3))
        ckt.add(Switch("S1", "m", "0", "c", r_on=1.0, r_off=1e9))
        op = operating_point(ckt)
        assert op.voltage("m") == pytest.approx(0.0, abs=1e-2)

    def test_switch_off_isolates(self):
        ckt = Circuit("sw")
        ckt.add(VoltageSource("V1", "a", "0", 1.0))
        ckt.add(VoltageSource("VC", "c", "0", 0.0))
        ckt.add(Resistor("R1", "a", "m", 1e3))
        ckt.add(Switch("S1", "m", "0", "c", r_on=1.0, r_off=1e9))
        op = operating_point(ckt)
        assert op.voltage("m") == pytest.approx(1.0, abs=1e-2)

    def test_invalid_resistances(self):
        with pytest.raises(NetlistError):
            Switch("S1", "a", "0", "c", r_on=10.0, r_off=5.0)


class TestDCSweep:
    def test_sweep_restores_waveform(self):
        ckt = divider()
        source = ckt.element("VIN")
        original = source.waveform
        dc_sweep(ckt, "VIN", [0.0, 0.5, 1.0])
        assert source.waveform is original

    def test_sweep_values_track_input(self):
        result = dc_sweep(divider(), "VIN", np.linspace(0, 2, 5))
        mid = result.voltage("mid")
        assert mid == pytest.approx(0.75 * np.linspace(0, 2, 5), rel=1e-6)

    def test_sweep_diode_monotonic(self):
        ckt = Circuit("diode-sweep")
        ckt.add(VoltageSource("V1", "a", "0", 0.0))
        ckt.add(Resistor("R1", "a", "d", 100.0))
        ckt.add(Diode("D1", "d", "0"))
        result = dc_sweep(ckt, "V1", np.linspace(0.0, 2.0, 21))
        i = -result.current("V1")
        assert np.all(np.diff(i) >= -1e-12)

    def test_sweep_non_source_rejected(self):
        with pytest.raises(NetlistError):
            dc_sweep(divider(), "RT", [0, 1])

    def test_len(self):
        assert len(dc_sweep(divider(), "VIN", [0.0, 1.0])) == 2
