"""Property-based tests for the MNA engine (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fecam.spice import (Capacitor, Circuit, Resistor, TransientOptions,
                         VoltageSource, operating_point, transient)

resistances = st.floats(min_value=10.0, max_value=1e6,
                        allow_nan=False, allow_infinity=False)
voltages = st.floats(min_value=-5.0, max_value=5.0,
                     allow_nan=False, allow_infinity=False)


@settings(max_examples=30, deadline=None)
@given(st.lists(resistances, min_size=2, max_size=8), voltages)
def test_ladder_voltages_bounded_by_source(rs, v_in):
    """Maximum principle: all node voltages of a resistive ladder lie
    between 0 and the source voltage."""
    ckt = Circuit("ladder")
    ckt.add(VoltageSource("VIN", "n0", "0", v_in))
    for i, r in enumerate(rs):
        ckt.add(Resistor(f"R{i}", f"n{i}", f"n{i+1}", r))
    ckt.add(Resistor("REND", f"n{len(rs)}", "0", 1e3))
    op = operating_point(ckt)
    lo, hi = min(0.0, v_in) - 1e-6, max(0.0, v_in) + 1e-6
    for i in range(len(rs) + 1):
        assert lo <= op.voltage(f"n{i}") <= hi


@settings(max_examples=30, deadline=None)
@given(resistances, resistances, voltages)
def test_divider_formula(r_top, r_bot, v_in):
    """Two-resistor divider matches the closed form to solver tolerance."""
    ckt = Circuit("div")
    ckt.add(VoltageSource("VIN", "in", "0", v_in))
    ckt.add(Resistor("RT", "in", "mid", r_top))
    ckt.add(Resistor("RB", "mid", "0", r_bot))
    op = operating_point(ckt)
    expected = v_in * r_bot / (r_top + r_bot)
    assert op.voltage("mid") == pytest.approx(expected, abs=1e-5)


@settings(max_examples=20, deadline=None)
@given(voltages, voltages)
def test_linear_superposition(v1, v2):
    """For a linear circuit, response to V1+V2 equals the sum of responses."""

    def solve(a, b):
        ckt = Circuit("sup")
        ckt.add(VoltageSource("V1", "a", "0", a))
        ckt.add(VoltageSource("V2", "b", "0", b))
        ckt.add(Resistor("R1", "a", "m", 1e3))
        ckt.add(Resistor("R2", "b", "m", 2e3))
        ckt.add(Resistor("R3", "m", "0", 3e3))
        return operating_point(ckt).voltage("m")

    both = solve(v1, v2)
    only1 = solve(v1, 0.0)
    only2 = solve(0.0, v2)
    assert both == pytest.approx(only1 + only2, abs=1e-6)


@settings(max_examples=15, deadline=None)
@given(st.floats(min_value=0.1, max_value=2.0),
       st.floats(min_value=0.5, max_value=5.0))
def test_rc_charge_conservation(v_hi, c_pf):
    """Charge delivered by the source equals the charge stored on the cap."""
    c = c_pf * 1e-12
    ckt = Circuit("q")
    from fecam.spice import Pulse
    ckt.add(VoltageSource("VIN", "in", "0", Pulse(0.0, v_hi, rise=1e-12,
                                                  width=1.0)))
    ckt.add(Resistor("R1", "in", "out", 1e3))
    ckt.add(Capacitor("C1", "out", "0", c))
    # Simulate long enough (>10 tau) for full charge.
    tau = 1e3 * c
    result = transient(ckt, 12 * tau, options=TransientOptions(dt=tau / 50))
    # Integrate source current (pos->neg through source: negative when
    # delivering), so stored charge is -integral.
    q_delivered = -np.trapezoid(result.current("VIN"), result.t)
    assert q_delivered == pytest.approx(c * v_hi, rel=0.03)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=6))
def test_parallel_resistors_combine(n):
    """N equal resistors in parallel draw N times the single-resistor current."""
    ckt = Circuit("par")
    ckt.add(VoltageSource("VIN", "a", "0", 1.0))
    for i in range(n):
        ckt.add(Resistor(f"R{i}", "a", "0", 1e3))
    op = operating_point(ckt)
    assert -op.current("VIN") == pytest.approx(n * 1e-3, rel=1e-6)
