"""Tests for the behavioral TCAM engine (numpy bit-parallel matcher)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fecam.cam import SearchPolicy, ternary_match
from fecam.designs import DesignKind
from fecam.errors import OperationError, TernaryValueError
from fecam.functional import EnergyModel, TernaryCAM


def fast_model(width):
    """Energy model with fixed numbers — keeps tests free of SPICE runs."""
    return EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=1e-15,
                       e_2step_per_bit=2e-15, latency_1step=1e-9,
                       latency_2step=2e-9, write_energy_per_cell=0.4e-15)


def make(rows=8, width=8, **kw):
    return TernaryCAM(rows=rows, width=width, design=DesignKind.DG_1T5,
                      energy_model=fast_model(width), **kw)


class TestBasics:
    def test_write_and_readback(self):
        t = make()
        t.write(0, "1010XX01")
        assert t.stored_word(0) == "1010XX01"
        assert t.stored_word(1) is None
        assert t.occupancy == 1

    def test_search_finds_matches(self):
        t = make()
        t.write(0, "1010XXXX")
        t.write(3, "XXXXXXXX")
        stats = t.search("10101111")
        assert stats.matches == [0, 3]

    def test_search_first_priority(self):
        t = make()
        t.write(2, "11111111")
        t.write(5, "1111XXXX")
        assert t.search_first("11111111") == 2
        assert t.search_first("11110000") == 5
        assert t.search_first("00000000") is None

    def test_erase(self):
        t = make()
        t.write(0, "11111111")
        t.erase(0)
        assert t.search("11111111").matches == []

    def test_validation(self):
        t = make()
        with pytest.raises(TernaryValueError):
            t.write(0, "101")  # wrong width
        with pytest.raises(OperationError):
            t.write(99, "10101010")
        with pytest.raises(TernaryValueError):
            t.search("101")
        with pytest.raises(OperationError):
            TernaryCAM(rows=0, width=4)

    def test_wide_words_use_multiple_chunks(self):
        t = TernaryCAM(rows=2, width=150, design=DesignKind.DG_1T5,
                       energy_model=fast_model(150))
        word = ("10X" * 50)
        t.write(0, word)
        assert t.stored_word(0) == word
        query = word.replace("X", "0")
        assert t.search(query).matches == [0]
        flipped = "0" + query[1:]
        assert t.search(flipped).matches == []


class TestEarlyTerminationStats:
    def test_step1_vs_step2_classification(self):
        t = make(rows=3, width=4)
        t.write(0, "0000")  # mismatch at even position 0 for query 1000
        t.write(1, "1100")  # mismatches only at odd position 1 -> step 2
        t.write(2, "10XX")  # match
        stats = t.search("1000")
        assert stats.step1_eliminated == 1
        assert stats.step2_misses == 1
        assert stats.full_matches == 1
        assert stats.matches == [2]

    def test_energy_accounting_with_early_termination(self):
        t = make(rows=2, width=8)
        t.write(0, "00000000")  # step-1 miss vs 1111...
        t.write(1, "11111111")  # match
        stats = t.search("11111111")
        # one row at 1-step energy + one at 2-step energy
        assert stats.energy == pytest.approx((1e-15 + 2e-15) * 8)

    def test_energy_without_early_termination(self):
        t = TernaryCAM(rows=2, width=8, design=DesignKind.DG_1T5,
                       energy_model=fast_model(8),
                       policy=SearchPolicy(early_termination=False))
        t.write(0, "00000000")
        t.write(1, "11111111")
        stats = t.search("11111111")
        assert stats.energy == pytest.approx(2e-15 * 8 * 2)

    def test_latency_reflects_steps(self):
        t = make(rows=1, width=8)
        t.write(0, "00000000")
        assert t.search("10000000").latency == pytest.approx(1e-9)  # 1-step
        t2 = make(rows=1, width=8)
        t2.write(0, "11111111")
        assert t2.search("11111111").latency == pytest.approx(2e-9)

    def test_counters_accumulate(self):
        t = make()
        t.write(0, "XXXXXXXX")
        e0 = t.energy_spent
        t.search("00000000")
        assert t.search_count == 1
        assert t.energy_spent > e0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from("01X"), min_size=6, max_size=6),
       st.lists(st.sampled_from("01"), min_size=6, max_size=6))
def test_engine_matches_specification(stored_syms, query_bits):
    """Property: the packed numpy matcher equals ternary_match exactly."""
    stored = "".join(stored_syms)
    query = "".join(query_bits)
    t = TernaryCAM(rows=1, width=6, design=DesignKind.DG_1T5,
                   energy_model=fast_model(6))
    t.write(0, stored)
    hit = t.search(query).matches == [0]
    assert hit == ternary_match(stored, query)


class TestGlobalMask:
    """The global masking register (per-search wildcards on the query)."""

    def test_masked_positions_ignored(self):
        t = make()
        t.write(0, "11110000")
        assert t.search("11110011").matches == []
        assert t.search("11110011", mask="11111100").matches == [0]

    def test_all_masked_matches_everything(self):
        t = make(rows=3)
        t.write(0, "10101010")
        t.write(1, "01010101")
        stats = t.search("11111111", mask="0" * 8)
        assert stats.matches == [0, 1]

    def test_mask_length_checked(self):
        t = make()
        t.write(0, "11110000")
        with pytest.raises(TernaryValueError):
            t.search("11110000", mask="111")

    def test_mask_symbols_validated(self):
        """Non-binary mask symbols raise instead of coercing to '0'."""
        t = make()
        t.write(0, "11110000")
        for bad in ("1111110X", "2" * 8, "11111 00"):
            with pytest.raises(TernaryValueError):
                t.search("11110000", mask=bad)


class TestEraseInvariant:
    """Erased rows must not retain stale value/care bits (ghost matches)."""

    def test_erase_zeroes_stored_planes(self):
        t = make()
        t.write(0, "1010XX01")
        t.erase(0)
        assert not t._value[0].any()
        assert not t._care[0].any()
        assert t.stored_word(0) is None

    def test_erased_row_cannot_ghost_match_packed_paths(self):
        t = make()
        t.write(0, "10101010")
        t.erase(0)
        # Direct packed probe of the stale row content: all-zero care
        # would wildcard-match everything if _value/_care leaked, so the
        # valid vector plus the zeroing must both hold.
        q_value = t.pack_query("10101010")
        assert t.search_packed(q_value).matches == []

    def test_erase_validates_row(self):
        t = make()
        with pytest.raises(OperationError):
            t.erase(99)


class TestPackedHelpers:
    """Vectorized packing and the packed-query fast path."""

    def test_pack_words_rejects_bad_symbols(self):
        from fecam.functional import pack_words
        with pytest.raises(TernaryValueError):
            pack_words(["01Z0"], 4)
        with pytest.raises(TernaryValueError):
            pack_words(["010"], 4)  # wrong width

    def test_search_packed_equals_search(self):
        t = make()
        t.write(0, "1010XXXX")
        t.write(5, "XXXXXXXX")
        q = t.pack_query("10101111")
        a = t.search("10101111")
        b = t.search_packed(q)
        assert a.matches == b.matches
        assert a.energy == b.energy

    def test_search_packed_validates_shape(self):
        import numpy as np
        t = make()
        with pytest.raises(TernaryValueError):
            t.search_packed(np.zeros(3, dtype=np.uint64))

    def test_write_many_equals_sequential_writes(self):
        words = ["1010XX01", "XXXXXXXX", "00001111"]
        bulk, seq = make(), make()
        bulk.write_many([2, 0, 5], words)
        for row, word in zip([2, 0, 5], words):
            seq.write(row, word)
        for row in range(8):
            assert bulk.stored_word(row) == seq.stored_word(row)
        assert bulk.energy_spent == seq.energy_spent
        assert bulk.write_count == seq.write_count

    def test_write_many_validation(self):
        t = make()
        with pytest.raises(OperationError):
            t.write_many([0, 0], ["10101010", "01010101"])  # dup rows
        with pytest.raises(OperationError):
            t.write_many([0, 99], ["10101010", "01010101"])
        with pytest.raises(OperationError):
            t.write_many([0], ["10101010", "01010101"])  # length mismatch
        t.write_many([], [])  # no-op
        assert t.occupancy == 0

    def test_write_many_accepts_alias_symbols(self):
        t = make()
        t.write_many([0], ["10*?10x1"])  # normalizing slow path
        assert t.stored_word(0) == "10XX10X1"
