"""Tests for the behavioral TCAM engine (numpy bit-parallel matcher)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fecam.cam import SearchPolicy, ternary_match
from fecam.designs import DesignKind
from fecam.errors import OperationError, TernaryValueError
from fecam.functional import EnergyModel, TernaryCAM


def fast_model(width):
    """Energy model with fixed numbers — keeps tests free of SPICE runs."""
    return EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=1e-15,
                       e_2step_per_bit=2e-15, latency_1step=1e-9,
                       latency_2step=2e-9, write_energy_per_cell=0.4e-15)


def make(rows=8, width=8, **kw):
    return TernaryCAM(rows=rows, width=width, design=DesignKind.DG_1T5,
                      energy_model=fast_model(width), **kw)


class TestBasics:
    def test_write_and_readback(self):
        t = make()
        t.write(0, "1010XX01")
        assert t.stored_word(0) == "1010XX01"
        assert t.stored_word(1) is None
        assert t.occupancy == 1

    def test_search_finds_matches(self):
        t = make()
        t.write(0, "1010XXXX")
        t.write(3, "XXXXXXXX")
        stats = t.search("10101111")
        assert stats.matches == [0, 3]

    def test_search_first_priority(self):
        t = make()
        t.write(2, "11111111")
        t.write(5, "1111XXXX")
        assert t.search_first("11111111") == 2
        assert t.search_first("11110000") == 5
        assert t.search_first("00000000") is None

    def test_erase(self):
        t = make()
        t.write(0, "11111111")
        t.erase(0)
        assert t.search("11111111").matches == []

    def test_validation(self):
        t = make()
        with pytest.raises(TernaryValueError):
            t.write(0, "101")  # wrong width
        with pytest.raises(OperationError):
            t.write(99, "10101010")
        with pytest.raises(TernaryValueError):
            t.search("101")
        with pytest.raises(OperationError):
            TernaryCAM(rows=0, width=4)

    def test_wide_words_use_multiple_chunks(self):
        t = TernaryCAM(rows=2, width=150, design=DesignKind.DG_1T5,
                       energy_model=fast_model(150))
        word = ("10X" * 50)
        t.write(0, word)
        assert t.stored_word(0) == word
        query = word.replace("X", "0")
        assert t.search(query).matches == [0]
        flipped = "0" + query[1:]
        assert t.search(flipped).matches == []


class TestEarlyTerminationStats:
    def test_step1_vs_step2_classification(self):
        t = make(rows=3, width=4)
        t.write(0, "0000")  # mismatch at even position 0 for query 1000
        t.write(1, "1100")  # mismatches only at odd position 1 -> step 2
        t.write(2, "10XX")  # match
        stats = t.search("1000")
        assert stats.step1_eliminated == 1
        assert stats.step2_misses == 1
        assert stats.full_matches == 1
        assert stats.matches == [2]

    def test_energy_accounting_with_early_termination(self):
        t = make(rows=2, width=8)
        t.write(0, "00000000")  # step-1 miss vs 1111...
        t.write(1, "11111111")  # match
        stats = t.search("11111111")
        # one row at 1-step energy + one at 2-step energy
        assert stats.energy == pytest.approx((1e-15 + 2e-15) * 8)

    def test_energy_without_early_termination(self):
        t = TernaryCAM(rows=2, width=8, design=DesignKind.DG_1T5,
                       energy_model=fast_model(8),
                       policy=SearchPolicy(early_termination=False))
        t.write(0, "00000000")
        t.write(1, "11111111")
        stats = t.search("11111111")
        assert stats.energy == pytest.approx(2e-15 * 8 * 2)

    def test_latency_reflects_steps(self):
        t = make(rows=1, width=8)
        t.write(0, "00000000")
        assert t.search("10000000").latency == pytest.approx(1e-9)  # 1-step
        t2 = make(rows=1, width=8)
        t2.write(0, "11111111")
        assert t2.search("11111111").latency == pytest.approx(2e-9)

    def test_counters_accumulate(self):
        t = make()
        t.write(0, "XXXXXXXX")
        e0 = t.energy_spent
        t.search("00000000")
        assert t.search_count == 1
        assert t.energy_spent > e0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from("01X"), min_size=6, max_size=6),
       st.lists(st.sampled_from("01"), min_size=6, max_size=6))
def test_engine_matches_specification(stored_syms, query_bits):
    """Property: the packed numpy matcher equals ternary_match exactly."""
    stored = "".join(stored_syms)
    query = "".join(query_bits)
    t = TernaryCAM(rows=1, width=6, design=DesignKind.DG_1T5,
                   energy_model=fast_model(6))
    t.write(0, stored)
    hit = t.search(query).matches == [0]
    assert hit == ternary_match(stored, query)


class TestGlobalMask:
    """The global masking register (per-search wildcards on the query)."""

    def test_masked_positions_ignored(self):
        t = make()
        t.write(0, "11110000")
        assert t.search("11110011").matches == []
        assert t.search("11110011", mask="11111100").matches == [0]

    def test_all_masked_matches_everything(self):
        t = make(rows=3)
        t.write(0, "10101010")
        t.write(1, "01010101")
        stats = t.search("11111111", mask="0" * 8)
        assert stats.matches == [0, 1]

    def test_mask_length_checked(self):
        t = make()
        t.write(0, "11110000")
        import pytest as _pytest
        from fecam.errors import TernaryValueError as _TVE
        with _pytest.raises(_TVE):
            t.search("11110000", mask="111")
