"""Unit tests for the bitplane arena: storage, views, generation
semantics, memoized derived planes, and the vectorized readback."""

import random

import numpy as np
import pytest

from fecam.designs import DesignKind
from fecam.errors import OperationError
from fecam.functional import EnergyModel, TernaryCAM, pack_word, pack_words
from fecam.planes import (CHUNK_BITS, TernaryPlanes, build_step1_index,
                          compress_even, n_chunks_for, step_masks)


def fast_cam(rows, width):
    """A cam priced by fixed FoM numbers (no circuit model in the loop)."""
    model = EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=1e-15,
                        e_2step_per_bit=2e-15, latency_1step=1e-9,
                        latency_2step=2e-9, write_energy_per_cell=0.4e-15)
    return TernaryCAM(rows=rows, width=width, energy_model=model)


def scalar_step_masks(width):
    """The pre-vectorization per-bit reference implementation."""
    n_chunks = n_chunks_for(width)
    even = np.zeros(n_chunks, dtype=np.uint64)
    odd = np.zeros(n_chunks, dtype=np.uint64)
    for pos in range(width):
        chunk, bit = divmod(pos, CHUNK_BITS)
        if pos % 2 == 0:
            even[chunk] |= np.uint64(1 << bit)
        else:
            odd[chunk] |= np.uint64(1 << bit)
    return even, odd


class TestStepMasks:
    @pytest.mark.parametrize("width", [1, 2, 7, 63, 64, 65, 100, 128, 150])
    def test_matches_scalar_reference(self, width):
        even, odd = step_masks(width)
        ref_even, ref_odd = scalar_step_masks(width)
        assert (even == ref_even).all()
        assert (odd == ref_odd).all()

    def test_memoized_and_read_only(self):
        a = step_masks(64)
        b = step_masks(64)
        assert a[0] is b[0]  # one shared pair per width, fabric-wide
        with pytest.raises(ValueError):
            a[0][0] = np.uint64(0)

    def test_engine_shim_still_answers(self):
        even, odd = TernaryCAM._step_masks(100, n_chunks_for(100))
        ref_even, ref_odd = scalar_step_masks(100)
        assert (even == ref_even).all() and (odd == ref_odd).all()


class TestGenerationSemantics:
    def test_mutations_advance_exactly_on_content_change(self):
        planes = TernaryPlanes(rows=4, width=8)
        value, care = pack_word("1010XXXX", 8)
        assert planes.generation == 0
        planes.set_row(0, value, care)
        assert planes.generation == 1
        planes.set_row(0, value, care)  # bit-identical rewrite: no-op
        assert planes.generation == 1
        other_value, other_care = pack_word("0101XXXX", 8)
        planes.set_row(0, other_value, other_care)
        assert planes.generation == 2
        planes.clear_row(0)
        assert planes.generation == 3
        planes.clear_row(0)  # already empty: content unchanged
        assert planes.generation == 3
        planes.clear_row(3)  # never written: content unchanged
        assert planes.generation == 3

    def test_bulk_write_advances_only_on_change(self):
        planes = TernaryPlanes(rows=4, width=8)
        value, care = pack_words(["1010XXXX", "0000XXXX"], 8)
        planes.set_rows(np.array([1, 2]), value, care)
        assert planes.generation == 1
        planes.set_rows(np.array([1, 2]), value, care)  # identical bulk
        assert planes.generation == 1
        planes.set_rows(np.array([], dtype=np.int64),
                        value[:0], care[:0])  # empty bulk
        assert planes.generation == 1
        planes.set_rows(np.array([2, 1]), value, care)  # swapped content
        assert planes.generation == 2

    def test_all_x_word_on_empty_row_is_a_content_change(self):
        # "XXXX..." packs to all-zero planes, but validating the row
        # changes what matches — the generation must advance.
        planes = TernaryPlanes(rows=2, width=8)
        value, care = pack_word("X" * 8, 8)
        planes.set_row(0, value, care)
        assert planes.generation == 1
        assert planes.valid[0]

    def test_engine_write_paths_route_through_generation(self):
        cam = fast_cam(rows=4, width=8)
        cam.write(0, "1010XXXX")
        gen = cam.planes.generation
        cam.write(0, "1010XXXX")  # same word: caches stay warm
        assert cam.planes.generation == gen
        cam.write(0, "1110XXXX")
        assert cam.planes.generation > gen
        gen = cam.planes.generation
        cam.erase(0)
        assert cam.planes.generation > gen
        gen = cam.planes.generation
        cam.write_many([1, 2], ["00001111", "1111XXXX"])
        assert cam.planes.generation > gen


class TestViews:
    def test_views_share_storage_zero_copy(self):
        arena = TernaryPlanes(rows=8, width=8)
        bank = arena.view(4, 8)
        assert bank.value.base is arena.value
        assert bank.is_view and not arena.is_view
        value, care = pack_word("1111XXXX", 8)
        bank.set_row(0, value, care)
        assert arena.valid[4]
        assert (arena.value[4] == value).all()

    def test_view_writes_bump_self_and_parent_not_siblings(self):
        arena = TernaryPlanes(rows=8, width=8)
        left, right = arena.view(0, 4), arena.view(4, 8)
        value, care = pack_word("1010XXXX", 8)
        left.set_row(1, value, care)
        assert left.generation == 1
        assert arena.generation == 1
        assert right.generation == 0  # sibling caches stay warm

    def test_view_bounds_validated(self):
        arena = TernaryPlanes(rows=8, width=8)
        with pytest.raises(OperationError):
            arena.view(4, 4)
        with pytest.raises(OperationError):
            arena.view(0, 9)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(OperationError):
            TernaryPlanes(rows=0, width=8)
        with pytest.raises(OperationError):
            TernaryPlanes(rows=4, width=0)
        cam_planes = TernaryPlanes(rows=4, width=8)
        with pytest.raises(OperationError):
            TernaryCAM(rows=8, width=8, planes=cam_planes)


class TestDerivedPlanes:
    def test_memoized_until_content_changes(self):
        planes = TernaryPlanes(rows=4, width=8)
        value, care = pack_word("10X0XXXX", 8)
        planes.set_row(0, value, care)
        first = planes.derived()
        assert planes.derived() is first  # quiescent: no recompress
        planes.set_row(1, *pack_word("0101XXXX", 8))
        second = planes.derived()
        assert second is not first
        assert second.rows_searched == 2

    def test_derived_contents_match_manual_recompute(self):
        rng = random.Random(3)
        for width in (8, 64, 70, 128):
            planes = TernaryPlanes(rows=10, width=width)
            words = ["".join(rng.choice("01X") for _ in range(width))
                     for _ in range(7)]
            value, care = pack_words(words, width)
            planes.set_rows(np.arange(7), value, care)
            planes.clear_row(3)
            derived = planes.derived()
            even, odd = step_masks(width)
            valid_rows = np.array([0, 1, 2, 4, 5, 6])
            assert (derived.valid_rows == valid_rows).all()
            v, c = planes.value[valid_rows], planes.care[valid_rows]
            assert (derived.ce32 == compress_even(c & even)).all()
            assert (derived.ve32 == compress_even(v & c & even)).all()
            assert (derived.co32
                    == compress_even((c & odd) >> np.uint64(1))).all()
            assert (derived.vo32
                    == compress_even((v & c & odd) >> np.uint64(1))).all()
            assert (derived.ce32_cm == derived.ce32.T).all()
            assert derived.ce32_cm.flags.c_contiguous

    def test_step1_index_candidates_are_a_superset_of_survivors(self):
        rng = random.Random(11)
        planes = TernaryPlanes(rows=40, width=16)
        words = ["".join(rng.choice("01XX") for _ in range(16))
                 for _ in range(33)]
        value, care = pack_words(words, 16)
        planes.set_rows(np.arange(33), value, care)
        derived = planes.derived()
        index = planes.step1_index()
        assert index is not None
        assert planes.step1_index() is index  # memoized while quiescent
        for _ in range(50):
            query = "".join(rng.choice("01") for _ in range(16))
            q_value, _ = pack_word(query, 16)
            qe = compress_even(q_value[None, :])[0]
            survivors = np.nonzero(
                ((qe[None, :] & derived.ce32) == derived.ve32)
                .all(axis=1))[0]
            x = int(qe[0] & np.uint32(0xFF))
            candidates = index.indices[index.indptr[x]:index.indptr[x + 1]]
            assert set(survivors.tolist()) <= set(candidates.tolist())
            # pre-gathered planes align with the candidate lists
            assert (index.ce0_at[index.indptr[x]:index.indptr[x + 1]]
                    == derived.ce32[candidates, 0]).all()

    def test_step1_index_none_for_empty_planes(self):
        planes = TernaryPlanes(rows=4, width=8)
        assert planes.step1_index() is None
        assert build_step1_index(planes.derived()) is None

    def test_step1_index_build_gate_consults_cache_only(self):
        planes = TernaryPlanes(rows=4, width=8)
        planes.set_row(0, *pack_word("1010XXXX", 8))
        assert planes.step1_index(build=False) is None  # nothing cached
        built = planes.step1_index(build=True)
        assert built is not None
        assert planes.step1_index(build=False) is built  # cache hit
        planes.set_row(1, *pack_word("0101XXXX", 8))
        assert planes.step1_index(build=False) is None  # stale: not served


class TestStoredWords:
    def test_round_trip_and_bulk_reader(self):
        rng = random.Random(9)
        for width in (1, 8, 64, 65, 130):
            cam = fast_cam(rows=9, width=width)
            words = {}
            for row in (0, 2, 5, 8):
                word = "".join(rng.choice("01X") for _ in range(width))
                cam.write(row, word)
                words[row] = word
            cam.erase(2)
            del words[2]
            bulk = cam.stored_words()
            assert len(bulk) == 9
            for row in range(9):
                assert bulk[row] == words.get(row)
                assert cam.stored_word(row) == words.get(row)

    def test_fabric_snapshot_is_arena_ordered(self):
        from fecam.fabric import TcamFabric
        fabric = TcamFabric(banks=2, rows_per_bank=4, width=8)
        fabric.insert("1010XXXX", key="a", bank=0)
        fabric.insert("0101XXXX", key="b", bank=1)
        snapshot = fabric.stored_words()
        assert len(snapshot) == 8
        assert snapshot[0] == "1010XXXX"      # bank 0, row 0
        assert snapshot[4] == "0101XXXX"      # bank 1, row 0
        assert all(word is None for i, word in enumerate(snapshot)
                   if i not in (0, 4))

    def test_banks_are_views_of_the_fabric_arena(self):
        from fecam.fabric import TcamFabric
        fabric = TcamFabric(banks=4, rows_per_bank=8, width=16)
        for bank in fabric.banks:
            assert bank.cam.planes.value.base is fabric.arena.value
        fabric.insert("01" * 8, key="k", bank=2)
        assert fabric.arena.valid[2 * 8]      # visible through the arena
        assert fabric.arena.generation == 1
        assert fabric.banks[2].cam.planes.generation == 1
        assert fabric.banks[0].cam.planes.generation == 0
