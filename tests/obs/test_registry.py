"""Unit tests for the metrics registry: name/label/bucket validation,
registration collision rules, counter/gauge/histogram semantics
(including the inclusive ``le`` bucket edges and the batched
``observe_many`` fast path), labeled children, and collect hooks."""

import math
import threading

import pytest

from fecam.errors import ObservabilityError
from fecam.obs import DEFAULT_LATENCY_BUCKETS, MetricsRegistry


class TestValidation:
    @pytest.mark.parametrize("name", ["", "1abc", "a-b", "a b", "a.b"])
    def test_bad_metric_names_rejected(self, name):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter(name, "bad")

    @pytest.mark.parametrize("name", ["a", "_a", "a:b", "A9_z", "fecam_x_total"])
    def test_good_metric_names_accepted(self, name):
        assert name in MetricsRegistry().counter(name, "ok").name

    def test_reserved_label_prefix_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("c_total", "x", labelnames=("__meta",))

    def test_le_label_reserved_for_histograms_only(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.histogram("h", "x", labelnames=("le",), buckets=(1.0,))
        # counters may use 'le' (nothing special about it there)
        registry.counter("c_total", "x", labelnames=("le",))

    def test_duplicate_label_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.gauge("g", "x", labelnames=("bank", "bank"))

    def test_bad_label_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.gauge("g", "x", labelnames=("bad-label",))

    @pytest.mark.parametrize("buckets", [
        (),                      # empty
        (1.0, math.inf),         # +Inf is implicit, not explicit
        (1.0, float("nan")),     # non-finite
        (1.0, 1.0),              # not strictly increasing
        (2.0, 1.0),              # decreasing
    ])
    def test_bad_buckets_rejected(self, buckets):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.histogram("h", "x", buckets=buckets)


class TestRegistrationCollisions:
    def test_identical_reregistration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("fecam_x_total", "X.", labelnames=("bank",))
        second = registry.counter("fecam_x_total", "X.", labelnames=("bank",))
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("fecam_x_total", "X.")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.gauge("fecam_x_total", "X.")

    def test_labelnames_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("fecam_x_total", "X.", labelnames=("bank",))
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.counter("fecam_x_total", "X.", labelnames=("shard",))

    def test_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", "X.", buckets=(1.0, 2.0))
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.histogram("h", "X.", buckets=(1.0, 4.0))
        assert registry.histogram("h", "X.", buckets=(1.0, 2.0)) is not None

    def test_contains_and_get(self):
        registry = MetricsRegistry()
        registry.gauge("g", "x")
        assert "g" in registry
        assert "other" not in registry
        assert registry.get("g").kind == "gauge"
        assert registry.get("other") is None


class TestCounterGauge:
    def test_counter_monotone(self):
        counter = MetricsRegistry().counter("c_total", "x")
        counter.inc()
        counter.inc(2.5)
        assert counter.get() == 3.5
        with pytest.raises(ObservabilityError):
            counter.inc(-1.0)

    def test_counter_set_total_mirrors_external_silo(self):
        counter = MetricsRegistry().counter("c_total", "x")
        counter.set_total(41)
        counter.set_total(42)
        assert counter.get() == 42.0

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g", "x")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(3.0)
        assert gauge.get() == 4.0


def _bucket_counts(family):
    (sample,) = family.snapshot().samples
    return sample.value


class TestHistogram:
    def test_le_edges_are_inclusive(self):
        """A value exactly on a bound lands in that bound's bucket —
        the Prometheus ``le`` (less-or-equal) contract."""
        hist = MetricsRegistry().histogram("h", "x", buckets=(1.0, 2.0, 4.0))
        for value in (1.0, 2.0, 4.0):
            hist.observe(value)
        value = _bucket_counts(hist)
        # cumulative: le=1 sees only 1.0; le=2 adds 2.0; le=4 adds 4.0
        assert value.buckets == ((1.0, 1), (2.0, 2), (4.0, 3),
                                 (math.inf, 3))
        assert value.count == 3
        assert value.sum == 7.0

    def test_overflow_bucket(self):
        hist = MetricsRegistry().histogram("h", "x", buckets=(1.0,))
        hist.observe(100.0)
        value = _bucket_counts(hist)
        assert value.buckets == ((1.0, 0), (math.inf, 1))

    @pytest.mark.parametrize("n", [3, 200])
    def test_observe_many_matches_observe(self, n):
        """Both observe_many paths (the per-value loop for small
        batches and the sort+bisect sweep for large ones) must agree
        exactly with one-at-a-time observe."""
        import random
        rng = random.Random(7)
        values = ([0.0, 1e-5, 0.5, 1.0, 1.0000001, 999.0]
                  + [rng.uniform(0, 2) for _ in range(n)])
        buckets = tuple(DEFAULT_LATENCY_BUCKETS)
        assert (len(values) > len(buckets)) == (n == 200)

        one = MetricsRegistry().histogram("h", "x", buckets=buckets)
        for value in values:
            one.observe(value)
        many = MetricsRegistry().histogram("h", "x", buckets=buckets)
        many.observe_many(values)

        v_one, v_many = _bucket_counts(one), _bucket_counts(many)
        assert v_one.buckets == v_many.buckets
        assert v_one.count == v_many.count
        assert v_one.sum == pytest.approx(v_many.sum)

    def test_observe_many_empty_is_noop(self):
        hist = MetricsRegistry().histogram("h", "x", buckets=(1.0,))
        hist.observe_many([])
        assert _bucket_counts(hist).count == 0

    def test_load_replaces_state(self):
        hist = MetricsRegistry().histogram("h", "x", buckets=(2.0, 8.0))
        hist.observe(1.0)
        hist.load([(1, 3), (4, 2), (100, 1)])
        value = _bucket_counts(hist)
        assert value.buckets == ((2.0, 3), (8.0, 5), (math.inf, 6))
        assert value.count == 6
        assert value.sum == 1 * 3 + 4 * 2 + 100 * 1


class TestLabels:
    def test_children_are_per_label_tuple(self):
        family = MetricsRegistry().counter("c_total", "x",
                                           labelnames=("bank",))
        family.labels(bank="0").inc()
        family.labels(bank="0").inc()
        family.labels(bank="1").inc(5)
        snap = family.snapshot()
        by_label = {sample.labels: sample.value
                    for sample in snap.samples}
        assert by_label[(("bank", "0"),)] == 2.0
        assert by_label[(("bank", "1"),)] == 5.0

    def test_label_values_coerced_to_str(self):
        family = MetricsRegistry().gauge("g", "x", labelnames=("bank",))
        assert family.labels(bank=3) is family.labels(bank="3")

    def test_wrong_labels_raise(self):
        family = MetricsRegistry().counter("c_total", "x",
                                           labelnames=("bank",))
        with pytest.raises(ObservabilityError):
            family.labels(shard="0")
        with pytest.raises(ObservabilityError):
            family.labels()

    def test_labeled_family_rejects_sole_child_proxy(self):
        family = MetricsRegistry().counter("c_total", "x",
                                           labelnames=("bank",))
        with pytest.raises(ObservabilityError, match="labels"):
            family.inc()


class TestCollect:
    def test_collect_runs_hooks_then_snapshots(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "x")
        silo = {"value": 0}
        registry.on_collect(lambda: gauge.set(silo["value"]))
        silo["value"] = 7
        (snap,) = registry.collect()
        assert snap.samples[0].value == 7.0

    def test_unregister_stops_the_hook(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "x")
        silo = {"value": 1}
        unregister = registry.on_collect(lambda: gauge.set(silo["value"]))
        registry.collect()
        unregister()
        unregister()  # idempotent
        silo["value"] = 99
        (snap,) = registry.collect()
        assert snap.samples[0].value == 1.0

    def test_collect_is_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta_total", "z")
        registry.counter("alpha_total", "a")
        assert [f.name for f in registry.collect()] == ["alpha_total",
                                                        "zeta_total"]

    def test_concurrent_increments_are_not_lost(self):
        counter = MetricsRegistry().counter("c_total", "x")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.get() == 4000.0
