"""Integration tests: the Observability bundle wired to a live
SearchService — all four stats silos in one Prometheus exposition, the
/metrics HTTP endpoint, per-request trace structure (stage spans sum to
within the e2e latency), and the slow-query log."""

import io
import json
import urllib.error
import urllib.request

import pytest

from fecam.designs import DesignKind
from fecam.functional import EnergyModel
from fecam.obs import (EveryN, JsonLinesSink, MetricsServer, Observability,
                       SlowQueryLog, Tracer, lint_prometheus)
from fecam.service import SearchService
from fecam.store import CamStore, StoreConfig

WIDTH = 8

STAGES = ("queue", "coalesce", "lock_wait", "kernel", "freeze")


def fast_model(width=WIDTH):
    return EnergyModel(DesignKind.DG_1T5, width, e_1step_per_bit=0.8e-15,
                       e_2step_per_bit=1.3e-15, latency_1step=0.7e-9,
                       latency_2step=2.3e-9, write_energy_per_cell=0.4e-15)


def make_fabric_store(rows=32, banks=4):
    store = CamStore(StoreConfig(width=WIDTH, rows=rows, banks=banks,
                                 backend="fabric",
                                 energy_model=fast_model()))
    store.insert("1010XXXX", key="a")
    store.insert("11111111", key="b")
    return store


def traced_obs(trace_buf, slow_buf, threshold=0.25):
    return Observability(
        tracer=Tracer(EveryN(1), JsonLinesSink(trace_buf)),
        slow_log=SlowQueryLog(threshold, JsonLinesSink(slow_buf)))


class TestFourSilosInOneSnapshot:
    def test_prometheus_text_covers_every_silo_and_lints(self):
        store = make_fabric_store()
        with Observability() as obs:
            with SearchService(store, obs=obs) as service:
                obs.bind_service(service)
                service.search_many(["10101111", "11111111"] * 4)
                text = obs.prometheus_text()
        # one representative series per silo: service, store, fabric
        # (per-bank labels), and the engine cam counters
        assert "fecam_service_served_total 8" in text
        assert "fecam_store_searches_total" in text
        assert 'fecam_fabric_bank_occupancy{bank="0"}' in text
        assert 'fecam_cam_searches_total{bank="0"}' in text
        assert "fecam_service_request_latency_seconds_bucket" in text
        assert lint_prometheus(text) == [], lint_prometheus(text)

    def test_json_lines_dump_parses(self):
        store = make_fabric_store()
        with Observability() as obs:
            with SearchService(store, obs=obs) as service:
                obs.bind_service(service)
                service.search("10101111")
                rows = [json.loads(line)
                        for line in obs.json_lines().splitlines()]
        names = {row["name"] for row in rows}
        assert {"fecam_service_served_total", "fecam_store_searches_total",
                "fecam_fabric_searches_total",
                "fecam_cam_searches_total"} <= names


class TestMetricsEndpoint:
    def test_metrics_http_smoke(self):
        store = make_fabric_store()
        with Observability() as obs:
            with SearchService(store, obs=obs) as service:
                obs.bind_service(service)
                service.search("11111111")
                server = obs.start_http()
                with urllib.request.urlopen(server.url, timeout=10) as resp:
                    assert resp.status == 200
                    assert resp.headers["Content-Type"].startswith(
                        "text/plain; version=0.0.4")
                    body = resp.read().decode()
                assert "fecam_service_served_total 1" in body
                assert lint_prometheus(body) == []

                json_url = server.url + ".json"
                with urllib.request.urlopen(json_url, timeout=10) as resp:
                    rows = [json.loads(line) for line in
                            resp.read().decode().splitlines()]
                assert any(row["name"] == "fecam_store_searches_total"
                           for row in rows)

                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(
                        server.url.replace("/metrics", "/nope"), timeout=10)
                assert excinfo.value.code == 404
        # obs.close() shut the server down with it
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(server.url, timeout=2)

    def test_standalone_metrics_server(self):
        from fecam.obs import MetricsRegistry
        registry = MetricsRegistry()
        registry.counter("demo_total", "Demo.").inc()
        with MetricsServer(registry) as server:
            assert server.port > 0
            with urllib.request.urlopen(server.url, timeout=10) as resp:
                assert b"demo_total 1" in resp.read()


class TestTracedRequests:
    def _serve_traced(self, n_queries=6):
        trace_buf, slow_buf = io.StringIO(), io.StringIO()
        store = make_fabric_store()
        obs = traced_obs(trace_buf, slow_buf)
        with obs:
            with SearchService(store, obs=obs) as service:
                obs.bind_service(service)
                service.search_many(["10101111"] * n_queries)
                text = obs.prometheus_text()
        traces = [json.loads(line)
                  for line in trace_buf.getvalue().splitlines()]
        return traces, obs, text

    def test_every_request_traced_at_every_one_sampling(self):
        traces, obs, _text = self._serve_traced(6)
        assert len(traces) == 6
        assert obs.tracer.sampled == obs.tracer.finished == 6

    def test_span_structure_and_stage_sum(self):
        traces, _obs, _text = self._serve_traced()
        for trace in traces:
            spans = {span["name"]: span for span in trace["spans"]}
            root = spans["request"]
            assert root["id"] == 1 and root["parent"] is None
            assert root["start_s"] == 0.0
            # every serving stage present, parented to the root
            for name in STAGES:
                assert name in spans, f"missing stage {name}"
                assert spans[name]["parent"] == 1
            # the store/kernel sub-spans nest under the kernel span
            kernel_id = spans["kernel"]["id"]
            assert spans["store.search_batch"]["parent"] == kernel_id
            # stage durations sum to within tolerance of the e2e span
            stage_sum = sum(spans[name]["duration_s"] for name in STAGES)
            assert stage_sum <= trace["duration_s"] * 1.05 + 1e-6
            assert trace["duration_s"] > 0.0
            # request attributes recorded at submit and completion
            assert trace["attrs"]["bits"] == "10101111"
            assert trace["attrs"]["matches"] == 1
            assert trace["attrs"]["batch_size"] >= 1

    def test_trace_counters_reach_the_registry(self):
        _traces, _obs, text = self._serve_traced(3)
        assert "fecam_service_traces_sampled_total 3" in text
        assert "fecam_service_traces_finished_total 3" in text


class TestSlowQueryLog:
    def test_threshold_zero_logs_everything(self):
        trace_buf, slow_buf = io.StringIO(), io.StringIO()
        store = make_fabric_store()
        with traced_obs(trace_buf, slow_buf, threshold=0.0) as obs:
            with SearchService(store, obs=obs) as service:
                obs.bind_service(service)
                service.search_many(["11111111"] * 4)
                text = obs.prometheus_text()
        entries = [json.loads(line)
                   for line in slow_buf.getvalue().splitlines()]
        assert len(entries) == 4
        for entry in entries:
            assert entry["bits"] == "11111111"
            assert entry["latency_s"] >= entry["threshold_s"] == 0.0
            assert entry["matches"] == 1
        assert "fecam_service_slow_queries_total 4" in text

    def test_fast_requests_stay_out_of_the_log(self):
        trace_buf, slow_buf = io.StringIO(), io.StringIO()
        store = make_fabric_store()
        with traced_obs(trace_buf, slow_buf, threshold=60.0) as obs:
            with SearchService(store, obs=obs) as service:
                obs.bind_service(service)
                service.search_many(["11111111"] * 4)
        assert slow_buf.getvalue() == ""

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(-1.0, JsonLinesSink(io.StringIO()))


class TestDisabledPathStaysClean:
    def test_service_without_obs_serves_identically(self):
        store = make_fabric_store()
        with SearchService(store) as service:
            served = service.search_many(["10101111"] * 3)
        assert all(s.match_keys == ["a"] for s in served)

    def test_bind_unbind_removes_the_mirror(self):
        store = make_fabric_store()
        with Observability() as obs:
            with SearchService(store, obs=obs) as service:
                unbind = obs.bind_service(service)
                service.search("11111111")
                assert "fecam_service_served_total 1" in \
                    obs.prometheus_text()
                unbind()
                service.search("11111111")
                # the hook is gone: the mirrored total no longer tracks
                assert "fecam_service_served_total 1" in \
                    obs.prometheus_text()
