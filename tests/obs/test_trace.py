"""Unit tests for sampled tracing: span parent/ordering invariants,
trace serialization, sampler determinism (EveryN, SeededRandom), the
tracer lifecycle, and the thread-local stage-span plumbing the lower
layers use."""

import io
import json
import threading
import time

import pytest

from fecam.obs import (EveryN, JsonLinesSink, SeededRandom, Trace, Tracer,
                       activated, active, record_span, stage)


class TestTraceSpans:
    def test_root_span_is_id_1_named_request(self):
        trace = Trace(7, bits="1010")
        assert trace.root.span_id == 1
        assert trace.root.parent_id is None
        assert trace.root.name == "request"
        assert trace.root.attrs == {"bits": "1010"}
        assert trace.spans[0] is trace.root

    def test_child_spans_default_parent_to_root_and_order(self):
        trace = Trace(1)
        first = trace.record("queue", 0.0, 1.0)
        second = trace.record("kernel", 1.0, 2.0)
        nested = trace.record("kernel.fused", 1.2, 1.8,
                              parent_id=second.span_id)
        assert [s.span_id for s in trace.spans] == [1, 2, 3, 4]
        assert first.parent_id == trace.root.span_id
        assert second.parent_id == trace.root.span_id
        assert nested.parent_id == second.span_id

    def test_open_then_close_measures(self):
        trace = Trace(1)
        span = trace.open("kernel", start=10.0)
        assert span.end is None and span.duration == 0.0
        span.close(10.5)
        assert span.duration == pytest.approx(0.5)

    def test_finish_closes_root(self):
        start = time.perf_counter()
        trace = Trace(1, started=start)
        assert not trace.finished
        trace.finish(start + 2.0)
        assert trace.finished
        assert trace.root.duration == pytest.approx(2.0)

    def test_as_dict_offsets_are_relative_to_root(self):
        start = 100.0
        trace = Trace(3, started=start, bits="11")
        trace.record("queue", start + 0.1, start + 0.3, wait="q")
        trace.finish(start + 1.0)
        payload = trace.as_dict()
        assert payload["trace_id"] == 3
        assert payload["duration_s"] == pytest.approx(1.0)
        assert payload["attrs"] == {"bits": "11"}
        root_row, queue_row = payload["spans"]
        assert root_row["id"] == 1 and root_row["parent"] is None
        assert root_row["start_s"] == 0.0
        assert queue_row["name"] == "queue"
        assert queue_row["parent"] == 1
        assert queue_row["start_s"] == pytest.approx(0.1)
        assert queue_row["duration_s"] == pytest.approx(0.2)
        assert queue_row["attrs"] == {"wait": "q"}
        json.dumps(payload)  # JSON-ready with no custom encoder


class TestSamplers:
    def test_every_n_fires_on_multiples(self):
        sampler = EveryN(4)
        decisions = [sampler() for _ in range(9)]
        assert decisions == [True, False, False, False,
                             True, False, False, False, True]

    def test_every_one_traces_everything(self):
        sampler = EveryN(1)
        assert all(sampler() for _ in range(5))

    def test_every_n_validates(self):
        with pytest.raises(ValueError):
            EveryN(0)

    def test_seeded_random_is_reproducible(self):
        left = SeededRandom(0.3, seed=42)
        right = SeededRandom(0.3, seed=42)
        decisions = [left() for _ in range(200)]
        assert decisions == [right() for _ in range(200)]
        assert any(decisions) and not all(decisions)

    def test_seeded_random_extremes_and_validation(self):
        assert not any(SeededRandom(0.0)() for _ in range(20))
        assert all(SeededRandom(1.0)() for _ in range(20))
        with pytest.raises(ValueError):
            SeededRandom(1.5)


class TestTracer:
    def test_sample_honors_sampler_and_counts(self):
        tracer = Tracer(EveryN(2))
        first = tracer.sample()
        second = tracer.sample()
        third = tracer.sample()
        assert first is not None and third is not None
        assert second is None
        assert tracer.sampled == 2
        assert first.trace_id != third.trace_id

    def test_begin_is_the_post_decision_half(self):
        """Hot callers check ``tracer.sampler()`` inline and call
        ``begin`` only on a positive decision — it must never consult
        the sampler again."""
        tracer = Tracer(lambda: False)
        trace = tracer.begin(bits="0")
        assert trace is not None
        assert tracer.sampled == 1

    def test_finish_emits_to_sink(self):
        buf = io.StringIO()
        tracer = Tracer(EveryN(1), JsonLinesSink(buf))
        trace = tracer.sample()
        trace.record("kernel", trace.root.start, trace.root.start + 0.1)
        tracer.finish(trace)
        assert tracer.finished == 1
        row = json.loads(buf.getvalue())
        assert {span["name"] for span in row["spans"]} == {"request",
                                                           "kernel"}

    def test_default_sampler_is_every_n(self):
        tracer = Tracer(sample_every=3)
        assert [tracer.sample() is not None for _ in range(6)] == [
            True, False, False, True, False, False]


class TestJsonLinesSink:
    def test_counts_and_appends_lines(self, tmp_path):
        path = str(tmp_path / "traces.jsonl")
        with JsonLinesSink(path) as sink:
            sink.write({"a": 1})
            sink.write({"b": 2})
            assert sink.count == 2
        lines = [json.loads(line)
                 for line in open(path).read().splitlines()]
        assert lines == [{"a": 1}, {"b": 2}]

    def test_wrapping_a_file_object_does_not_close_it(self):
        buf = io.StringIO()
        sink = JsonLinesSink(buf)
        sink.write({"x": 1})
        sink.close()
        assert not buf.closed


class TestActiveTraceThreading:
    def test_stage_is_noop_when_nothing_active(self):
        assert active() == ()
        with stage("kernel"):
            pass  # no trace to land on; must not raise

    def test_record_span_lands_on_every_target(self):
        one, two = Trace(1), Trace(2)
        anchor = two.record("kernel", 0.0, 1.0)
        with activated([(one, one.root_id), (two, anchor.span_id)]):
            assert len(active()) == 2
            with stage("kernel.fused", rows=16):
                pass
        assert active() == ()
        span_one = one.spans[-1]
        span_two = two.spans[-1]
        assert span_one.name == span_two.name == "kernel.fused"
        assert span_one.parent_id == one.root_id
        assert span_two.parent_id == anchor.span_id
        assert span_one.attrs == {"rows": 16}

    def test_activation_is_per_thread(self):
        trace = Trace(1)
        seen = {}

        def other_thread():
            seen["targets"] = active()

        with activated([(trace, trace.root_id)]):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert seen["targets"] == ()

    def test_activation_restores_previous_targets(self):
        outer, inner = Trace(1), Trace(2)
        with activated([(outer, outer.root_id)]):
            with activated([(inner, inner.root_id)]):
                assert active() == ((inner, inner.root_id),)
            assert active() == ((outer, outer.root_id),)

    def test_record_span_helper(self):
        trace = Trace(1)
        record_span([(trace, trace.root_id)], "freeze", 5.0, 6.0)
        assert trace.spans[-1].name == "freeze"
        assert trace.spans[-1].duration == pytest.approx(1.0)
