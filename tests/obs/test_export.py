"""Exporter tests: the Prometheus text golden rendering, the JSON-lines
metric dump, and the promtool-free exposition linter (the CI gate that
keeps ``/metrics`` output spec-compliant without installing promtool)."""

import json

import pytest

from fecam.obs import (MetricsRegistry, lint_prometheus, render_json_lines,
                       render_prometheus)


def _demo_registry():
    registry = MetricsRegistry()
    served = registry.counter("demo_served_total", "Requests served.")
    served.inc(3)
    depth = registry.gauge("demo_queue_depth", "Queue depth now.")
    depth.set(2)
    banked = registry.counter("demo_bank_hits_total", "Hits per bank.",
                              labelnames=("bank",))
    banked.labels(bank="0").inc(4)
    banked.labels(bank="1").inc(1)
    latency = registry.histogram("demo_latency_seconds", "Latency.",
                                 buckets=(0.1, 0.5))
    latency.observe(0.05)
    latency.observe(0.3)
    latency.observe(2.0)
    return registry


GOLDEN = """\
# HELP demo_bank_hits_total Hits per bank.
# TYPE demo_bank_hits_total counter
demo_bank_hits_total{bank="0"} 4
demo_bank_hits_total{bank="1"} 1
# HELP demo_latency_seconds Latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="0.1"} 1
demo_latency_seconds_bucket{le="0.5"} 2
demo_latency_seconds_bucket{le="+Inf"} 3
demo_latency_seconds_sum 2.35
demo_latency_seconds_count 3
# HELP demo_queue_depth Queue depth now.
# TYPE demo_queue_depth gauge
demo_queue_depth 2
# HELP demo_served_total Requests served.
# TYPE demo_served_total counter
demo_served_total 3
"""


class TestRenderPrometheus:
    def test_golden(self):
        assert render_prometheus(_demo_registry()) == GOLDEN

    def test_golden_lints_clean(self):
        assert lint_prometheus(GOLDEN) == []

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert lint_prometheus("") == []

    def test_escaping_survives_the_linter(self):
        registry = MetricsRegistry()
        family = registry.gauge("g", 'Help with \\ and\nnewline.',
                                labelnames=("q",))
        family.labels(q='va"l\\ue\n').set(1)
        text = render_prometheus(registry)
        assert r'q="va\"l\\ue\n"' in text
        assert lint_prometheus(text) == []

    def test_special_float_values(self):
        registry = MetricsRegistry()
        registry.gauge("g_inf", "x").set(float("inf"))
        registry.gauge("g_nan", "x").set(float("nan"))
        text = render_prometheus(registry)
        assert "g_inf +Inf" in text
        assert "g_nan NaN" in text
        assert lint_prometheus(text) == []


class TestRenderJsonLines:
    def test_one_object_per_sample_round_trippable(self):
        rows = [json.loads(line) for line in
                render_json_lines(_demo_registry(),
                                  timestamp=123.0).splitlines()]
        by_name = {}
        for row in rows:
            by_name.setdefault(row["name"], []).append(row)
            assert row["ts"] == 123.0

        (served,) = by_name["demo_served_total"]
        assert served["type"] == "counter"
        assert served["value"] == 3
        assert served["labels"] == {}

        banked = by_name["demo_bank_hits_total"]
        assert {row["labels"]["bank"]: row["value"]
                for row in banked} == {"0": 4, "1": 1}

        (latency,) = by_name["demo_latency_seconds"]
        assert latency["count"] == 3
        assert latency["sum"] == pytest.approx(2.35)
        # le keys are strings ("+Inf" for overflow) so the document is
        # valid JSON and the schema survives a dump/load cycle.
        assert latency["buckets"] == [["0.1", 1], ["0.5", 2], ["+Inf", 3]]


class TestLintPrometheus:
    def test_sample_without_type_declaration(self):
        errors = lint_prometheus("orphan_total 1\n")
        assert any("no preceding TYPE" in e for e in errors)

    def test_invalid_type(self):
        errors = lint_prometheus("# TYPE x foo\n")
        assert any("invalid type" in e for e in errors)

    def test_duplicate_type(self):
        text = ("# TYPE x counter\nx 1\n"
                "# TYPE x counter\n")
        assert any("duplicate TYPE" in e for e in lint_prometheus(text))

    def test_type_after_samples(self):
        text = ("# TYPE y counter\ny 1\nx 2\n")
        # x has no TYPE at all; also exercise TYPE-after-sample
        text2 = GOLDEN + "# TYPE demo_served_total counter\n"
        assert lint_prometheus(text)
        assert any("duplicate TYPE" in e or "after its samples" in e
                   for e in lint_prometheus(text2))

    def test_unparseable_value(self):
        text = "# TYPE x gauge\nx notanumber\n"
        assert any("unparseable value" in e for e in lint_prometheus(text))

    def test_malformed_labels(self):
        text = '# TYPE x gauge\nx{bank=0} 1\n'
        assert lint_prometheus(text) != []

    def test_duplicate_label_names(self):
        text = '# TYPE x gauge\nx{a="1",a="2"} 1\n'
        assert any("duplicate label" in e for e in lint_prometheus(text))

    def test_histogram_missing_inf_bucket(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 1\n'
                "h_sum 1\nh_count 1\n")
        assert any("no +Inf bucket" in e for e in lint_prometheus(text))

    def test_histogram_non_cumulative_buckets(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                'h_bucket{le="2"} 3\n'
                'h_bucket{le="+Inf"} 5\n'
                "h_sum 1\nh_count 5\n")
        assert any("not cumulative" in e for e in lint_prometheus(text))

    def test_histogram_count_disagrees_with_inf_bucket(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 5\n'
                "h_sum 1\nh_count 4\n")
        assert any("_count" in e for e in lint_prometheus(text))

    def test_histogram_invalid_suffix(self):
        text = ("# TYPE h histogram\n"
                "h_quantile 5\n")
        assert any("invalid suffix" in e or "no preceding TYPE" in e
                   for e in lint_prometheus(text))

    def test_bucket_without_le_label(self):
        text = ("# TYPE h histogram\n"
                "h_bucket 5\n"
                'h_bucket{le="+Inf"} 5\n'
                "h_sum 1\nh_count 5\n")
        assert any("without le label" in e for e in lint_prometheus(text))

    def test_malformed_comment(self):
        assert any("malformed comment" in e
                   for e in lint_prometheus("# HLEP x oops\n"))
