"""Tests for the architecture tier: areas, wires, drivers, encoder, FoM."""

import pytest

from fecam.arch import (PAPER_TABLE4, PriorityEncoder, SharedDriverMat,
                        WIRE_14NM, cell_geometry, column_wire,
                        driver_params_for, evaluate_array, ml_wire)
from fecam.designs import DesignKind
from fecam.errors import CalibrationError, OperationError


class TestGeometry:
    def test_paper_areas_reproduced(self):
        """Tab. IV cell areas come out of the feature accounting."""
        expected = {DesignKind.CMOS_16T: 0.286, DesignKind.SG_2FEFET: 0.095,
                    DesignKind.DG_2FEFET: 0.204, DesignKind.SG_1T5: 0.108,
                    DesignKind.DG_1T5: 0.156}
        for design, area in expected.items():
            assert cell_geometry(design).area_um2 == pytest.approx(area, rel=0.02)

    def test_ordering_claims(self):
        """2SG smallest; every FeFET cell beats 16T CMOS; DG variants pay
        the P-well penalty over their SG siblings."""
        a = {d: cell_geometry(d).area for d in DesignKind}
        assert a[DesignKind.SG_2FEFET] == min(a.values())
        for d in DesignKind.fefet_designs():
            assert a[d] < a[DesignKind.CMOS_16T]
        assert a[DesignKind.DG_2FEFET] > a[DesignKind.SG_2FEFET]
        assert a[DesignKind.DG_1T5] > a[DesignKind.SG_1T5]

    def test_paper_improvement_factors(self):
        """1.83x (DG) and 2.65x (SG) cell-area improvement vs 16T CMOS."""
        cmos = cell_geometry(DesignKind.CMOS_16T).area
        assert cmos / cell_geometry(DesignKind.DG_1T5).area == pytest.approx(
            1.83, rel=0.03)
        assert cmos / cell_geometry(DesignKind.SG_1T5).area == pytest.approx(
            2.65, rel=0.03)

    def test_width_height_consistent(self):
        g = cell_geometry(DesignKind.DG_1T5)
        assert g.width * g.height == pytest.approx(g.area)
        assert g.width / g.height == pytest.approx(g.aspect)


class TestWires:
    def test_ml_wire_scales_with_word(self):
        w16 = ml_wire(DesignKind.DG_1T5, 16)
        w64 = ml_wire(DesignKind.DG_1T5, 64)
        assert w64.capacitance == pytest.approx(4 * w16.capacitance)
        assert w64.resistance == pytest.approx(4 * w16.resistance)

    def test_column_wire_scales_with_rows(self):
        c = column_wire(DesignKind.SG_1T5, 64)
        assert c.capacitance == pytest.approx(
            WIRE_14NM.c_per_m * cell_geometry(DesignKind.SG_1T5).height * 64)

    def test_elmore_delay_positive(self):
        assert ml_wire(DesignKind.DG_1T5, 64).elmore_delay > 0


class TestDrivers:
    def test_hv_driver_scales_with_voltage(self):
        sg = driver_params_for(DesignKind.SG_1T5)
        dg = driver_params_for(DesignKind.DG_1T5)
        assert sg.max_voltage == 4.0 and dg.max_voltage == 2.0
        assert sg.area > 3 * dg.area  # quadratic HV overhead
        assert sg.leakage_power > dg.leakage_power

    def test_cmos_has_no_driver(self):
        with pytest.raises(OperationError):
            driver_params_for(DesignKind.CMOS_16T)

    def test_sharing_only_for_dg(self):
        for d in (DesignKind.DG_1T5, DesignKind.DG_2FEFET):
            assert SharedDriverMat(d, 64, 64).sharing_supported
        for d in (DesignKind.SG_1T5, DesignKind.SG_2FEFET):
            assert not SharedDriverMat(d, 64, 64).sharing_supported

    def test_sharing_halves_drivers(self):
        mat = SharedDriverMat(DesignKind.DG_1T5, 64, 64)
        assert mat.driver_count(shared=True) * 2 == mat.driver_count(shared=False)
        assert mat.driver_area(True) < mat.driver_area(False)
        assert mat.utilization(True) > mat.utilization(False)


class TestEncoder:
    def test_priority_semantics(self):
        enc = PriorityEncoder(4)
        assert enc.encode([False, True, True, False]) == (True, 1)
        assert enc.encode([False] * 4) == (False, None)
        assert enc.encode_all([True, False, True, False]) == [0, 2]

    def test_input_validation(self):
        with pytest.raises(OperationError):
            PriorityEncoder(0)
        with pytest.raises(OperationError):
            PriorityEncoder(4).encode([True])

    def test_cost_scales(self):
        small = PriorityEncoder(16).cost()
        big = PriorityEncoder(256).cost()
        assert big.gates > small.gates
        assert big.area > small.area
        assert big.delay > small.delay


class TestEvaluateArray:
    def test_fom_row_well_formed(self):
        fom = evaluate_array(DesignKind.DG_1T5, rows=64, word_length=16)
        row = fom.as_row()
        assert row["design"] == "1.5T1DG-Fe"
        assert row["cell_area_um2"] == pytest.approx(0.156, rel=0.02)
        assert row["write_energy_fj"] == pytest.approx(0.41, rel=0.02)
        assert row["latency_1step_ps"] > 0
        assert row["energy_avg_fj"] > 0

    def test_early_termination_average(self):
        lo = evaluate_array(DesignKind.DG_1T5, word_length=16,
                            step1_miss_rate=1.0)
        hi = evaluate_array(DesignKind.DG_1T5, word_length=16,
                            step1_miss_rate=0.0)
        assert lo.search_energy_avg < hi.search_energy_avg
        assert lo.search_energy_avg == pytest.approx(lo.search_energy_1step)
        assert hi.search_energy_avg == pytest.approx(hi.search_energy_total)

    def test_bad_miss_rate(self):
        with pytest.raises(OperationError):
            evaluate_array(DesignKind.DG_1T5, word_length=16,
                           step1_miss_rate=1.5)

    def test_paper_reference_table_complete(self):
        assert set(PAPER_TABLE4) == set(DesignKind)
        assert PAPER_TABLE4[DesignKind.DG_1T5]["write_energy_fj"] == 0.41
