"""Tests for the extension tiers: variability MC, analytical estimator,
banked macro."""

import math
import random

import pytest

from fecam.arch import TcamMacro, estimate_search, evaluate_array
from fecam.designs import DesignKind
from fecam.devices import (MonteCarloResult, VariationParams, divider_yield,
                           sample_vth_shifts)
from fecam.errors import CalibrationError, OperationError


class TestVariationParams:
    def test_mvt_state_has_largest_sigma(self):
        p = VariationParams()
        s_hvt = p.fefet_state_sigma(0.0, 0.9)
        s_mvt = p.fefet_state_sigma(0.5, 0.9)
        s_lvt = p.fefet_state_sigma(1.0, 0.9)
        assert s_mvt > s_hvt == pytest.approx(s_lvt)

    def test_more_domains_reduce_mvt_sigma(self):
        few = VariationParams(n_domains=10)
        many = VariationParams(n_domains=1000)
        assert few.fefet_state_sigma(0.5, 0.9) > many.fefet_state_sigma(0.5, 0.9)

    def test_pelgrom_scaling(self):
        p = VariationParams()
        small = p.mos_sigma(40e-9, 20e-9)
        big = p.mos_sigma(40e-9, 720e-9)
        assert small == pytest.approx(p.sigma_vth_mos_ref)
        assert big < small
        assert small / big == pytest.approx(math.sqrt(720 / 20), rel=1e-6)

    def test_validation(self):
        with pytest.raises(CalibrationError):
            VariationParams(n_domains=0)
        with pytest.raises(CalibrationError):
            VariationParams(sigma_pr_rel=-0.1)


class TestMonteCarlo:
    def test_zero_variation_gives_full_yield(self):
        quiet = VariationParams(sigma_vth_fefet=0.0, sigma_pr_rel=0.0,
                                sigma_vth_mos_ref=0.0, n_domains=10 ** 9)
        r = divider_yield(DesignKind.DG_1T5, samples=10, params=quiet)
        assert r.yield_fraction == 1.0
        assert r.worst_mismatch_margin > 0.08

    def test_yield_degrades_with_sigma(self):
        mild = divider_yield(DesignKind.SG_1T5, samples=60,
                             params=VariationParams(sigma_vth_fefet=0.01,
                                                    n_domains=500))
        harsh = divider_yield(DesignKind.SG_1T5, samples=60,
                              params=VariationParams(sigma_vth_fefet=0.08,
                                                     n_domains=20))
        assert mild.yield_fraction > harsh.yield_fraction

    def test_result_statistics(self):
        r = divider_yield(DesignKind.DG_1T5, samples=40)
        assert isinstance(r, MonteCarloResult)
        assert len(r.mismatch_margins) == 40
        assert r.margin_percentile(0.0) <= r.margin_percentile(0.99)
        assert 0.0 <= r.yield_fraction <= 1.0

    def test_seed_reproducible(self):
        a = divider_yield(DesignKind.DG_1T5, samples=25, seed=7)
        b = divider_yield(DesignKind.DG_1T5, samples=25, seed=7)
        assert a.mismatch_margins == b.mismatch_margins

    def test_validation(self):
        with pytest.raises(OperationError):
            divider_yield(DesignKind.DG_2FEFET)
        with pytest.raises(OperationError):
            divider_yield(DesignKind.DG_1T5, samples=0)

    def test_sample_shift_keys(self):
        rng = random.Random(0)
        shifts = sample_vth_shifts(DesignKind.DG_1T5, VariationParams(), rng)
        assert set(shifts) == {"fe_hvt", "fe_lvt", "fe_mvt", "tn", "tp", "tml"}


class TestAnalyticalEstimator:
    def test_all_designs_estimate(self):
        for d in DesignKind:
            e = estimate_search(d, 64)
            assert e.latency_total > 0
            assert e.energy_per_bit > 0
            assert e.ml_capacitance > 1e-15

    def test_latency_grows_with_word_length(self):
        for d in DesignKind:
            assert (estimate_search(d, 128).latency_total
                    > estimate_search(d, 16).latency_total)

    def test_orderings_match_spice_tier(self):
        """The closed-form model reproduces the headline orderings."""
        lat = {d: estimate_search(d, 64).latency_per_eval for d in DesignKind}
        assert lat[DesignKind.SG_2FEFET] < lat[DesignKind.DG_2FEFET]
        assert lat[DesignKind.SG_1T5] < lat[DesignKind.SG_2FEFET]
        assert lat[DesignKind.DG_1T5] < lat[DesignKind.DG_2FEFET]

    def test_within_3x_of_spice(self):
        """Cross-check against the transient tier (same physics inputs)."""
        for d in (DesignKind.SG_2FEFET, DesignKind.DG_1T5):
            spice = evaluate_array(d, word_length=32)
            quick = estimate_search(d, 32)
            ratio = quick.latency_per_eval / spice.latency_1step
            assert 1 / 3 < ratio < 3, (d, ratio)

    def test_validation(self):
        with pytest.raises(OperationError):
            estimate_search(DesignKind.DG_1T5, 1)


class TestTcamMacro:
    def test_for_capacity_rounds_up(self):
        m = TcamMacro.for_capacity(DesignKind.DG_1T5, entries=100, word=32,
                                   rows_per_bank=64)
        assert m.banks == 2
        assert m.capacity == 128
        assert m.bits == 128 * 32

    def test_area_scales_with_banks(self):
        small = TcamMacro(DesignKind.DG_1T5, rows=64, word=32, banks=2)
        big = TcamMacro(DesignKind.DG_1T5, rows=64, word=32, banks=8)
        # Cells scale 4x; the shared driver mats are amortized (a 2-bank
        # macro already pays a full mat), so the total scales a bit less.
        assert 3.0 * small.area() < big.area() < 4.0 * small.area()

    def test_summary_units(self):
        m = TcamMacro(DesignKind.DG_1T5, rows=64, word=32, banks=4)
        s = m.summary()
        # 64*32*4 cells of 0.156 um^2 plus periphery: ~1.3e-3 mm^2.
        assert 1e-3 < s["area_mm2"] < 5e-3
        assert s["search_latency_ns"] > 1.0
        assert s["throughput_msps"] > 10

    def test_cmos_macro_has_no_write_energy(self):
        m = TcamMacro(DesignKind.CMOS_16T, rows=64, word=32, banks=1)
        assert m.write_energy() == 0.0

    def test_validation(self):
        with pytest.raises(OperationError):
            TcamMacro(DesignKind.DG_1T5, rows=0)
        with pytest.raises(OperationError):
            TcamMacro.for_capacity(DesignKind.DG_1T5, entries=0, word=32)

    def test_search_energy_scales_with_banks(self):
        e1 = TcamMacro(DesignKind.DG_1T5, rows=64, word=32, banks=1)
        e4 = TcamMacro(DesignKind.DG_1T5, rows=64, word=32, banks=4)
        assert e4.search_energy() > 3.5 * e1.search_energy()
