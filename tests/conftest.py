"""Shared test configuration: hypothesis profiles and pytest markers.

Hypothesis settings profiles let the property/stress suites run deep
locally while staying bounded on shared CI runners:

* ``ci``      — few examples, no deadline (loaded runners stall);
* ``dev``     — the local default: the depth the suites were tuned at;
* ``nightly`` — exhaustive sweeps for scheduled runs.

Select with ``HYPOTHESIS_PROFILE=ci pytest ...`` (default: ``dev``).
Tests that pin their own ``@settings(max_examples=...)`` keep their
tuned depth; profile-controlled suites (e.g. the backend conformance
and equivalence batteries) scale with the profile.

The ``slow`` marker tags the deep stress/property tests; skip them for
quick iteration with ``pytest -m "not slow"``.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci", max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.register_profile("dev", max_examples=40, deadline=None)
settings.register_profile(
    "nightly", max_examples=300, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: deep stress/property tests — deselect with "
        "-m \"not slow\" for quick iteration")
