"""The legacy app constructors warn exactly once per constructor.

Every app accepts the old layout kwargs (``design=``, ``banks=``,
``cache_size=``, ``tcam=``) through a shim that emits one
DeprecationWarning per constructor per process — not one per call, so a
bulk instantiation loop cannot flood stderr.  The filter is ours, not
Python's default-dedup: tests run under ``simplefilter("always")``.
"""

import warnings

import pytest

from fecam.apps import (HammingSearcher, OneShotClassifier, SeedIndex,
                        TcamCache, TcamClassifier, TcamRouter)
from fecam.apps._compat import reset_warn_once
from fecam.designs import DesignKind
from fecam.errors import OperationError
from fecam.functional import TernaryCAM
from fecam.store import StoreConfig


@pytest.fixture(autouse=True)
def fresh_warn_state():
    reset_warn_once()
    yield
    reset_warn_once()


def deprecations(record):
    return [w for w in record
            if issubclass(w.category, DeprecationWarning)]


def make_legacy_calls():
    """(constructor name, zero-arg legacy call) for every app."""
    return [
        ("TcamRouter", lambda: TcamRouter(capacity=4, banks=2)),
        ("TcamClassifier", lambda: TcamClassifier(cache_size=4)),
        ("TcamCache", lambda: TcamCache(
            lines=2, design=DesignKind.DG_1T5)),
        ("SeedIndex", lambda: SeedIndex(
            "ACGTACGT", k=4, design=DesignKind.DG_1T5)),
        ("HammingSearcher", lambda: HammingSearcher(
            rows=2, width=4, design=DesignKind.DG_1T5)),
        ("OneShotClassifier", lambda: OneShotClassifier(
            width=4, design=DesignKind.DG_1T5)),
    ]


@pytest.mark.parametrize("name,call", make_legacy_calls(),
                         ids=[n for n, _ in make_legacy_calls()])
def test_legacy_kwargs_warn_exactly_once_per_constructor(name, call):
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")  # defeat Python's own dedup
        call()
        call()
        call()
    warns = deprecations(record)
    assert len(warns) == 1, (name, [str(w.message) for w in warns])
    assert name in str(warns[0].message)
    assert "store_config" in str(warns[0].message)


def test_constructors_warn_independently():
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        TcamRouter(capacity=4, banks=2)
        TcamClassifier(banks=2)
        TcamRouter(capacity=4, banks=3)  # second router: no new warning
    warns = deprecations(record)
    assert len(warns) == 2
    assert "TcamRouter" in str(warns[0].message)
    assert "TcamClassifier" in str(warns[1].message)


def test_store_config_path_is_warning_free():
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        TcamRouter(capacity=4, store_config=StoreConfig(banks=2))
        TcamClassifier(store_config=StoreConfig(cache_size=4))
        TcamCache(lines=2, store_config=StoreConfig())
        SeedIndex("ACGTACGT", k=4, store_config=StoreConfig())
        HammingSearcher(rows=2, width=4, store_config=StoreConfig())
        OneShotClassifier(width=4, store_config=StoreConfig())
        TcamRouter(capacity=4)  # defaults are not "legacy" either
    assert deprecations(record) == []


def test_mixing_legacy_and_config_rejected():
    with pytest.raises(OperationError):
        TcamRouter(capacity=4, banks=2, store_config=StoreConfig())


def test_error_names_constructor_and_offending_kwargs():
    with pytest.raises(OperationError) as excinfo:
        TcamClassifier(banks=2, cache_size=4, store_config=StoreConfig())
    message = str(excinfo.value)
    assert "TcamClassifier" in message
    assert "banks" in message and "cache_size" in message


def test_warn_once_custom_stacklevel_points_at_caller():
    from fecam.apps._compat import warn_once

    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        warn_once("CustomCtor", "CustomCtor(...) is deprecated",
                  stacklevel=2)
        warn_once("CustomCtor", "CustomCtor(...) is deprecated",
                  stacklevel=2)
    warns = deprecations(record)
    assert len(warns) == 1
    assert warns[0].filename == __file__  # stacklevel=2: our frame


def test_legacy_config_carries_all_resolved_fields():
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        router = TcamRouter(capacity=4, banks=3, cache_size=16,
                            design=DesignKind.SG_1T5)
    config = router.store_config
    assert config.banks == 3
    assert config.cache_size == 16
    assert config.design is DesignKind.SG_1T5


def test_tcam_injection_shim_adopts_content():
    cam = TernaryCAM(rows=4, width=8)
    cam.write(0, "11110000")
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        searcher = HammingSearcher(rows=4, width=8, tcam=cam)
        HammingSearcher(rows=4, width=8, tcam=TernaryCAM(rows=4, width=8))
    assert len(deprecations(record)) == 1
    assert searcher.tcam is cam
    # Adopted rows keep working through the store API.
    searcher._words[0] = "11110000"
    assert searcher.nearest("11110000") == (0, 0)
    searcher.store(1, "0000XXXX")
    assert searcher.nearest("00001111") == (1, 0)
