"""Tests for the application substrates (router, cache, classifier,
genomics), each verified against a pure-software reference."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fecam.apps import (Packet, Rule, SeedIndex, TcamCache, TcamClassifier,
                        TcamRouter, encode_seed, int_to_ip, ip_to_int,
                        parse_cidr, range_to_prefixes, vote_alignment)
from fecam.cam import ternary_match
from fecam.errors import OperationError


class TestRouterHelpers:
    def test_ip_roundtrip(self):
        for ip in ("0.0.0.0", "10.1.2.3", "255.255.255.255"):
            assert int_to_ip(ip_to_int(ip)) == ip

    def test_parse_cidr_masks_host_bits(self):
        network, length = parse_cidr("10.1.2.3/16")
        assert int_to_ip(network) == "10.1.0.0"
        assert length == 16

    def test_parse_cidr_validation(self):
        with pytest.raises(OperationError):
            parse_cidr("10.1.2.3/40")
        with pytest.raises(OperationError):
            ip_to_int("300.1.1.1")
        with pytest.raises(OperationError):
            ip_to_int("1.2.3")


class TestRouter:
    def test_longest_prefix_wins(self):
        r = TcamRouter(capacity=8)
        r.add_route("10.0.0.0/8", "coarse")
        r.add_route("10.1.0.0/16", "fine")
        r.add_route("10.1.2.0/24", "finest")
        assert r.lookup("10.1.2.3") == "finest"
        assert r.lookup("10.1.9.9") == "fine"
        assert r.lookup("10.9.9.9") == "coarse"
        assert r.lookup("11.0.0.1") is None

    def test_default_route(self):
        r = TcamRouter(capacity=4)
        r.add_route("0.0.0.0/0", "default")
        assert r.lookup("1.2.3.4") == "default"

    def test_replace_and_remove(self):
        r = TcamRouter(capacity=4)
        r.add_route("10.0.0.0/8", "a")
        r.add_route("10.0.0.0/8", "b")
        assert len(r) == 1
        assert r.lookup("10.1.1.1") == "b"
        assert r.remove_route("10.0.0.0/8")
        assert not r.remove_route("10.0.0.0/8")
        assert r.lookup("10.1.1.1") is None

    def test_capacity_enforced(self):
        r = TcamRouter(capacity=1)
        r.add_route("1.0.0.0/8", "x")
        with pytest.raises(OperationError):
            r.add_route("2.0.0.0/8", "y")

    def test_matches_reference_on_random_tables(self):
        rng = random.Random(42)
        r = TcamRouter(capacity=128)
        r.add_route("0.0.0.0/0", "default")
        for i in range(60):
            net = rng.randrange(0, 1 << 32)
            length = rng.randrange(4, 30)
            r.add_route(f"{int_to_ip(net)}/{length}", f"hop{i}")
        for _ in range(200):
            addr = int_to_ip(rng.randrange(0, 1 << 32))
            assert r.lookup(addr) == r.lookup_reference(addr)


class TestRouterOnFabric:
    """Multi-bank / cached / batched router paths (fabric tier)."""

    def _random_router(self, rng, **kw):
        router = TcamRouter(capacity=128, **kw)
        router.add_route("0.0.0.0/0", "default")
        for i in range(40):
            net = rng.randrange(0, 1 << 32)
            length = rng.randrange(4, 30)
            router.add_route(f"{int_to_ip(net)}/{length}", f"hop{i}")
        return router

    def test_multibank_matches_reference(self):
        rng = random.Random(17)
        router = self._random_router(rng, banks=4, cache_size=32)
        for _ in range(150):
            addr = int_to_ip(rng.randrange(0, 1 << 32))
            assert router.lookup(addr) == router.lookup_reference(addr)

    def test_lookup_batch_matches_scalar(self):
        rng = random.Random(23)
        router = self._random_router(rng, banks=3)
        addrs = [int_to_ip(rng.randrange(0, 1 << 32)) for _ in range(100)]
        assert router.lookup_batch(addrs) == \
            [router.lookup_reference(a) for a in addrs]
        assert router.lookup_batch([]) == []

    def test_cache_serves_hot_lookups(self):
        router = TcamRouter(capacity=8, banks=2, cache_size=8)
        router.add_route("10.0.0.0/8", "hop")
        router.lookup("10.1.1.1")
        energy = router.stats["energy_j"]
        for _ in range(5):
            assert router.lookup("10.1.1.1") == "hop"
        assert router.stats["energy_j"] == energy  # all served from cache
        assert router.stats["cache_hits"] == 5

    def test_stats_keys_stable_before_first_lookup(self):
        router = TcamRouter(banks=4)
        assert set(router.stats) == \
            {"searches", "energy_j", "banks", "cache_hits"}


class TestClassifierOnFabric:
    """Multi-bank / batched classifier paths (fabric tier)."""

    def _rules(self, cl):
        cl.add_rule(Rule(name="a", dst_port_range=(100, 1000)))
        cl.add_rule(Rule(name="b", src_prefix=(ip_to_int("10.0.0.0"), 8)))
        cl.add_rule(Rule(name="c", protocol=17))

    def test_multibank_matches_reference(self):
        rng = random.Random(31)
        cl = TcamClassifier(banks=4, cache_size=16)
        self._rules(cl)
        for _ in range(100):
            p = Packet(src_ip=rng.randrange(1 << 32),
                       dst_ip=rng.randrange(1 << 32),
                       src_port=rng.randrange(1 << 16),
                       dst_port=rng.randrange(1 << 16),
                       protocol=rng.choice((6, 17)))
            assert cl.classify(p) == cl.classify_reference(p)

    def test_classify_batch_matches_scalar(self):
        rng = random.Random(37)
        cl = TcamClassifier(banks=3)
        self._rules(cl)
        packets = [Packet(src_ip=rng.randrange(1 << 32),
                          dst_ip=rng.randrange(1 << 32),
                          src_port=rng.randrange(1 << 16),
                          dst_port=rng.randrange(1 << 16),
                          protocol=rng.choice((6, 17)))
                   for _ in range(80)]
        assert cl.classify_batch(packets) == \
            [cl.classify_reference(p) for p in packets]
        assert cl.classify_batch([]) == []

    def test_priority_preserved_across_banks(self):
        cl = TcamClassifier(banks=4)
        cl.add_rule(Rule(name="web", dst_port_range=(80, 443)))
        cl.add_rule(Rule(name="all", dst_port_range=(0, 65535)))
        p80 = Packet(src_ip=0, dst_ip=0, src_port=1, dst_port=80,
                     protocol=6)
        assert cl.classify(p80) == "web"
        assert cl.classify_batch([p80]) == ["web"]


class TestCache:
    def test_miss_then_hit(self):
        c = TcamCache(lines=4, block_bits=4, address_bits=16)
        assert not c.access(0x1230).hit
        assert c.access(0x1234).hit  # same block
        assert c.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        c = TcamCache(lines=2, block_bits=4, address_bits=16)
        c.access(0x0010)
        c.access(0x0020)
        c.access(0x0010)  # touch line 0 -> 0x0020 becomes LRU
        result = c.access(0x0030)
        assert not result.hit
        assert result.evicted_tag == 0x0020 >> 4
        assert c.contains(0x0010)
        assert not c.contains(0x0020)

    def test_validation(self):
        with pytest.raises(OperationError):
            TcamCache(lines=0)
        with pytest.raises(OperationError):
            TcamCache(lines=2, block_bits=32, address_bits=32)
        c = TcamCache(lines=2)
        with pytest.raises(OperationError):
            c.access(-1)

    def test_energy_accumulates(self):
        c = TcamCache(lines=4, block_bits=4, address_bits=16)
        c.access(0x100)
        assert c.energy_spent > 0


class TestRangeExpansion:
    def test_exact_value(self):
        assert range_to_prefixes(5, 5, 4) == ["0101"]

    def test_full_range_is_single_wildcard(self):
        assert range_to_prefixes(0, 15, 4) == ["XXXX"]

    def test_cover_is_exact(self):
        lo, hi, width = 3, 12, 4
        prefixes = range_to_prefixes(lo, hi, width)
        covered = set()
        for p in prefixes:
            fixed = p.rstrip("X")
            span = width - len(fixed)
            base = int(fixed, 2) << span if fixed else 0
            covered.update(range(base, base + (1 << span)))
        assert covered == set(range(lo, hi + 1))

    def test_worst_case_bound(self):
        # Classic bound: at most 2w - 2 prefixes.
        width = 16
        prefixes = range_to_prefixes(1, (1 << width) - 2, width)
        assert len(prefixes) <= 2 * width - 2

    def test_validation(self):
        with pytest.raises(OperationError):
            range_to_prefixes(5, 3, 4)
        with pytest.raises(OperationError):
            range_to_prefixes(0, 16, 4)


class TestClassifier:
    def _packet(self, dst_port, protocol=6):
        return Packet(src_ip=ip_to_int("192.168.1.5"),
                      dst_ip=ip_to_int("10.0.0.7"), src_port=1234,
                      dst_port=dst_port, protocol=protocol)

    def test_priority_order(self):
        cl = TcamClassifier()
        cl.add_rule(Rule(name="web", dst_port_range=(80, 443)))
        cl.add_rule(Rule(name="all", dst_port_range=(0, 65535)))
        assert cl.classify(self._packet(80)) == "web"
        assert cl.classify(self._packet(8080)) == "all"

    def test_protocol_filter(self):
        cl = TcamClassifier()
        cl.add_rule(Rule(name="dns", dst_port_range=(53, 53), protocol=17))
        assert cl.classify(self._packet(53, protocol=17)) == "dns"
        assert cl.classify(self._packet(53, protocol=6)) is None

    def test_prefix_fields(self):
        cl = TcamClassifier()
        cl.add_rule(Rule(name="lan", src_prefix=(ip_to_int("192.168.0.0"), 16)))
        assert cl.classify(self._packet(9999)) == "lan"
        outside = Packet(src_ip=ip_to_int("8.8.8.8"), dst_ip=0, src_port=1,
                         dst_port=9999, protocol=6)
        assert cl.classify(outside) is None

    def test_matches_reference_on_random_packets(self):
        rng = random.Random(9)
        cl = TcamClassifier()
        cl.add_rule(Rule(name="a", dst_port_range=(100, 1000)))
        cl.add_rule(Rule(name="b", src_prefix=(ip_to_int("10.0.0.0"), 8)))
        cl.add_rule(Rule(name="c", protocol=17))
        for _ in range(100):
            p = Packet(src_ip=rng.randrange(1 << 32),
                       dst_ip=rng.randrange(1 << 32),
                       src_port=rng.randrange(1 << 16),
                       dst_port=rng.randrange(1 << 16),
                       protocol=rng.choice((6, 17)))
            assert cl.classify(p) == cl.classify_reference(p)

    def test_rows_used_counts_expansion(self):
        cl = TcamClassifier()
        cl.add_rule(Rule(name="r", dst_port_range=(1, 6)))
        assert cl.rows_used == len(range_to_prefixes(1, 6, 16))


class TestGenomics:
    def test_encoding(self):
        assert encode_seed("ACGT") == "00011011"
        assert encode_seed("AN") == "00XX"
        with pytest.raises(OperationError):
            encode_seed("AZ")
        with pytest.raises(OperationError):
            encode_seed("")

    def test_lookup_matches_scan(self):
        rng = random.Random(21)
        ref = "".join(rng.choice("ACGT") for _ in range(200))
        idx = SeedIndex(ref, k=6)
        for _ in range(20):
            pos = rng.randrange(0, 195)
            seed = ref[pos:pos + 6]
            tcam_hits = [h.position for h in idx.lookup(seed)]
            assert tcam_hits == idx.lookup_reference_scan(seed)

    def test_n_in_reference_is_wildcard(self):
        idx = SeedIndex("ACGNACGT", k=4)
        hits = [h.position for h in idx.lookup("ACGT")]
        assert 0 in hits  # 'ACGN' matches 'ACGT'
        assert 4 in hits

    def test_query_n_rejected(self):
        idx = SeedIndex("ACGTACGT", k=4)
        with pytest.raises(OperationError):
            idx.lookup("ACGN")

    def test_vote_alignment_recovers_offset(self):
        rng = random.Random(31)
        ref = "".join(rng.choice("ACGT") for _ in range(300))
        idx = SeedIndex(ref, k=8)
        read = ref[100:140]
        assert vote_alignment(read, idx) == 100

    def test_vote_alignment_none_for_foreign_read(self):
        idx = SeedIndex("A" * 64, k=8)
        assert vote_alignment("C" * 16, idx) is None


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=8))
def test_route_word_matches_covered_addresses(hi, lo, shift):
    """Property: a route's ternary word matches exactly its covered IPs."""
    from fecam.apps.router import Route

    network = ((hi << 24) | (lo << 16)) & ~((1 << shift) - 1)
    route = Route(network=network, prefix_len=32 - shift, next_hop="x")
    word = route.ternary_word()
    inside = network | ((1 << shift) - 1)
    assert ternary_match(word, format(inside, "032b"))
    outside = network ^ (1 << 31)
    assert not ternary_match(word, format(outside, "032b"))
