"""Tests for approximate (Hamming) matching and the one-shot classifier."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fecam.apps import HammingSearcher, OneShotClassifier, hamming_distance
from fecam.errors import OperationError, TernaryValueError


class TestHammingDistance:
    def test_basics(self):
        assert hamming_distance("1010", "1010") == 0
        assert hamming_distance("1010", "1000") == 1
        assert hamming_distance("1111", "0000") == 4

    def test_wildcards_are_free(self):
        assert hamming_distance("1XX0", "1110") == 0
        assert hamming_distance("XXXX", "1010") == 0

    def test_length_check(self):
        with pytest.raises(TernaryValueError):
            hamming_distance("10", "100")


class TestHammingSearcher:
    def _searcher(self):
        h = HammingSearcher(rows=4, width=8)
        h.store(0, "11110000")
        h.store(1, "11111111")
        h.store(2, "0000XXXX")
        h.store(3, "01010101")
        return h

    def test_exact_hit_at_distance_zero(self):
        h = self._searcher()
        assert h.nearest("11110000") == (0, 0)

    def test_nearest_expands_radius(self):
        h = self._searcher()
        row, dist = h.nearest("11110010")
        assert (row, dist) == (0, 1)

    def test_wildcards_attract(self):
        h = self._searcher()
        assert h.nearest("00001100") == (2, 0)

    def test_search_within_returns_sorted(self):
        h = self._searcher()
        hits = h.search_within("11110001", 2)
        assert hits[0] == (0, 1)
        assert all(d <= 2 for _, d in hits)
        distances = [d for _, d in hits]
        assert distances == sorted(distances)

    def test_max_distance_bound(self):
        h = self._searcher()
        assert h.nearest("00110011", max_distance=0) is None

    def test_negative_distance_rejected(self):
        h = self._searcher()
        with pytest.raises(OperationError):
            h.search_within("11110000", -1)

    def test_matches_reference_on_random_content(self):
        rng = random.Random(17)
        h = HammingSearcher(rows=6, width=10)
        for row in range(6):
            h.store(row, "".join(rng.choice("01X") for _ in range(10)))
        for _ in range(25):
            query = "".join(rng.choice("01") for _ in range(10))
            got = h.nearest(query)
            ref = h.nearest_reference(query)
            assert got is not None and ref is not None
            assert got[1] == ref[1]  # same distance (ties may differ by row)


class TestOneShotClassifier:
    def test_learn_and_classify(self):
        clf = OneShotClassifier(width=8)
        clf.learn("cat", "1100XX00")
        clf.learn("dog", "0011XX11")
        assert clf.classify("11001100") == "cat"
        assert clf.classify("00110011") == "dog"

    def test_noisy_features_still_classify(self):
        clf = OneShotClassifier(width=8)
        clf.learn("a", "11111111")
        clf.learn("b", "00000000")
        assert clf.classify("11101111") == "a"  # 1-bit noise
        assert clf.classify("00010000") == "b"

    def test_capacity(self):
        clf = OneShotClassifier(width=4, capacity=1)
        clf.learn("only", "1010")
        with pytest.raises(OperationError):
            clf.learn("extra", "0101")

    def test_max_distance_rejects_outliers(self):
        clf = OneShotClassifier(width=8)
        clf.learn("a", "11111111")
        assert clf.classify("00000000", max_distance=2) is None


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from("01"), min_size=6, max_size=6),
       st.lists(st.sampled_from("01"), min_size=6, max_size=6))
def test_distance_symmetry_on_binary_words(a_bits, b_bits):
    """For binary (no-X) words the distance is symmetric."""
    a, b = "".join(a_bits), "".join(b_bits)
    assert hamming_distance(a, b) == hamming_distance(b, a)
