"""Every application workload runs on both store backends.

Each app is parametrized over an array-backed config and a multi-bank
fabric config (with query caching) and verified against its
pure-software reference — the acceptance contract of the `fecam.store`
redesign: sharding, batching, and caching are config edits that never
change answers.
"""

import random

import pytest

from fecam.apps import (HammingSearcher, OneShotClassifier, Packet, Rule,
                        SeedIndex, TcamCache, TcamClassifier, TcamRouter,
                        int_to_ip, vote_alignment)
from fecam.store import StoreConfig

CONFIGS = [
    pytest.param(StoreConfig(), id="array"),
    pytest.param(StoreConfig(banks=3, cache_size=16), id="fabric"),
    pytest.param(StoreConfig(banks=1, backend="fabric"),
                 id="fabric-1bank"),
]


@pytest.mark.parametrize("config", CONFIGS)
class TestRouterOnBothBackends:
    def test_matches_reference(self, config):
        rng = random.Random(5)
        router = TcamRouter(capacity=128, store_config=config)
        router.add_route("0.0.0.0/0", "default")
        for i in range(40):
            net = rng.randrange(0, 1 << 32)
            router.add_route(f"{int_to_ip(net)}/{rng.randrange(4, 30)}",
                             f"hop{i}")
        addrs = [int_to_ip(rng.randrange(0, 1 << 32)) for _ in range(60)]
        expected = [router.lookup_reference(a) for a in addrs]
        assert [router.lookup(a) for a in addrs] == expected
        assert router.lookup_batch(addrs) == expected
        stats = router.store_stats
        assert stats.backend == config.backend_kind
        assert stats.banks == config.banks

    def test_store_stats_telemetry(self, config):
        router = TcamRouter(capacity=4, store_config=config)
        router.add_route("10.0.0.0/8", "hop")
        router.lookup("10.1.1.1")
        router.lookup("10.1.1.1")
        stats = router.store_stats
        assert stats.searches == 2
        if config.cache_size:
            assert stats.cache_hits == 1
            assert stats.array_searches == 1


@pytest.mark.parametrize("config", CONFIGS)
class TestClassifierOnBothBackends:
    def test_matches_reference(self, config):
        rng = random.Random(13)
        cl = TcamClassifier(store_config=config)
        cl.add_rule(Rule(name="a", dst_port_range=(100, 1000)))
        cl.add_rule(Rule(name="b",
                         src_prefix=(int("0a000000", 16), 8)))
        cl.add_rule(Rule(name="c", protocol=17))
        packets = [Packet(src_ip=rng.randrange(1 << 32),
                          dst_ip=rng.randrange(1 << 32),
                          src_port=rng.randrange(1 << 16),
                          dst_port=rng.randrange(1 << 16),
                          protocol=rng.choice((6, 17)))
                   for _ in range(60)]
        expected = [cl.classify_reference(p) for p in packets]
        assert [cl.classify(p) for p in packets] == expected
        assert cl.classify_batch(packets) == expected
        assert cl.store_stats.backend == config.backend_kind


@pytest.mark.parametrize("config", CONFIGS)
class TestCacheOnBothBackends:
    def test_lru_behavior(self, config):
        c = TcamCache(lines=2, block_bits=4, address_bits=16,
                      store_config=config)
        c.access(0x0010)
        c.access(0x0020)
        c.access(0x0010)  # touch line 0 -> 0x0020 becomes LRU
        result = c.access(0x0030)
        assert not result.hit
        assert result.evicted_tag == 0x0020 >> 4
        assert c.contains(0x0010)
        assert not c.contains(0x0020)
        assert c.contains_batch([0x0010, 0x0020, 0x0030]) == \
            [True, False, True]
        assert c.contains_batch([]) == []

    def test_random_trace_matches_model(self, config):
        rng = random.Random(3)
        c = TcamCache(lines=4, block_bits=4, address_bits=16,
                      store_config=config)
        model: "dict[int, int]" = {}  # tag -> last use
        tick = 0
        for _ in range(120):
            addr = rng.randrange(0, 1 << 12)
            tag = addr >> 4
            expect_hit = tag in model
            assert c.access(addr).hit == expect_hit
            model[tag] = tick = tick + 1
            if len(model) > 4:
                model.pop(min(model, key=model.get))
        assert 0 < c.hit_rate < 1
        assert c.store_stats.occupancy == 4


@pytest.mark.parametrize("config", CONFIGS)
class TestGenomicsOnBothBackends:
    def test_lookup_matches_scan(self, config):
        rng = random.Random(21)
        ref = "".join(rng.choice("ACGTN") for _ in range(150))
        idx = SeedIndex(ref, k=5, store_config=config)
        seeds = []
        for _ in range(15):
            pos = rng.randrange(0, 140)
            seed = ref[pos:pos + 5].replace("N", "A")
            seeds.append(seed)
            assert [h.position for h in idx.lookup(seed)] == \
                idx.lookup_reference_scan(seed)
        batched = idx.lookup_batch(seeds)
        assert [[h.position for h in hits] for hits in batched] == \
            [idx.lookup_reference_scan(s) for s in seeds]

    def test_vote_alignment(self, config):
        rng = random.Random(31)
        ref = "".join(rng.choice("ACGT") for _ in range(200))
        idx = SeedIndex(ref, k=8, store_config=config)
        assert vote_alignment(ref[60:100], idx) == 60
        assert idx.store_stats.backend == config.backend_kind


@pytest.mark.parametrize("config", CONFIGS)
class TestHammingOnBothBackends:
    def test_nearest_matches_reference(self, config):
        rng = random.Random(17)
        h = HammingSearcher(rows=6, width=10, store_config=config)
        for row in range(6):
            h.store(row, "".join(rng.choice("01X") for _ in range(10)))
        for _ in range(15):
            query = "".join(rng.choice("01") for _ in range(10))
            got = h.nearest(query)
            ref = h.nearest_reference(query)
            assert got is not None and got[1] == ref[1]
            hits = h.search_within(query, 2)
            assert all(d <= 2 for _, d in hits)
            assert [d for _, d in hits] == sorted(d for _, d in hits)

    def test_one_shot_classifier(self, config):
        clf = OneShotClassifier(width=8, store_config=config)
        clf.learn("cat", "1100XX00")
        clf.learn("dog", "0011XX11")
        assert clf.classify("11001100") == "cat"
        assert clf.classify_batch(["00110011", "11001100"]) == \
            ["dog", "cat"]

    def test_store_rewrites_in_place(self, config):
        h = HammingSearcher(rows=2, width=4, store_config=config)
        h.store(0, "1111")
        h.store(0, "0000")
        assert h.nearest("0000") == (0, 0)
        assert h.nearest("1111") == (0, 4)
        assert h.cam_store.occupancy == 1
